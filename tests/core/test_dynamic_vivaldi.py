"""Tests for repro.core.dynamic_vivaldi."""

import numpy as np
import pytest

from repro.coords.vivaldi import VivaldiConfig
from repro.core.dynamic_vivaldi import DynamicNeighborVivaldi, DynamicVivaldiConfig
from repro.errors import EmbeddingError


def _config(period: int = 15, neighbors: int = 8) -> DynamicVivaldiConfig:
    return DynamicVivaldiConfig(
        vivaldi=VivaldiConfig(n_neighbors=neighbors), period=period
    )


class TestDynamicVivaldiConfig:
    def test_defaults(self):
        config = DynamicVivaldiConfig()
        assert config.period == 100
        assert config.candidate_multiplier == 2

    def test_validation(self):
        with pytest.raises(EmbeddingError):
            DynamicVivaldiConfig(period=0)
        with pytest.raises(EmbeddingError):
            DynamicVivaldiConfig(candidate_multiplier=1)


class TestDynamicNeighborVivaldi:
    def test_iteration_count(self, small_internet_matrix):
        dynamic = DynamicNeighborVivaldi(small_internet_matrix, _config(), rng=0)
        snapshots = dynamic.run(3)
        assert len(snapshots) == 4  # iteration 0 plus 3 refinements
        assert [s.iteration for s in snapshots] == [0, 1, 2, 3]

    def test_neighbor_list_sizes_preserved(self, small_internet_matrix):
        dynamic = DynamicNeighborVivaldi(small_internet_matrix, _config(neighbors=8), rng=1)
        snapshots = dynamic.run(2)
        for snap in snapshots:
            assert all(len(neighbors) == 8 for neighbors in snap.neighbor_lists)
            for i, neighbors in enumerate(snap.neighbor_lists):
                assert i not in neighbors

    def test_severity_decreases_over_iterations(
        self, small_internet_matrix, small_internet_severity
    ):
        """Fig. 22: refinement drains high-severity edges from neighbour sets."""
        dynamic = DynamicNeighborVivaldi(small_internet_matrix, _config(period=30, neighbors=16), rng=2)
        snapshots = dynamic.run(3)
        first = snapshots[0].neighbor_edge_severities(small_internet_severity).mean()
        last = snapshots[-1].neighbor_edge_severities(small_internet_severity).mean()
        assert last < first

    def test_snapshots_contain_predictions(self, small_internet_matrix):
        dynamic = DynamicNeighborVivaldi(small_internet_matrix, _config(), rng=3)
        snapshots = dynamic.run(1)
        n = small_internet_matrix.n_nodes
        for snap in snapshots:
            assert snap.predicted.shape == (n, n)
            assert snap.coordinates.shape[0] == n

    def test_run_continues_incrementally(self, small_internet_matrix):
        dynamic = DynamicNeighborVivaldi(small_internet_matrix, _config(), rng=4)
        dynamic.run(1)
        snapshots = dynamic.run(2)
        assert [s.iteration for s in snapshots] == [0, 1, 2, 3]

    def test_iteration_accessor(self, small_internet_matrix):
        dynamic = DynamicNeighborVivaldi(small_internet_matrix, _config(), rng=5)
        dynamic.run(2)
        assert dynamic.iteration(1).iteration == 1
        with pytest.raises(EmbeddingError):
            dynamic.iteration(9)

    def test_negative_iterations_raise(self, small_internet_matrix):
        dynamic = DynamicNeighborVivaldi(small_internet_matrix, _config(), rng=6)
        with pytest.raises(EmbeddingError):
            dynamic.run(-1)

    def test_zero_iterations_records_baseline(self, small_internet_matrix):
        dynamic = DynamicNeighborVivaldi(small_internet_matrix, _config(), rng=7)
        snapshots = dynamic.run(0)
        assert len(snapshots) == 1
        assert snapshots[0].iteration == 0

    def test_reproducible(self, small_internet_matrix):
        a = DynamicNeighborVivaldi(small_internet_matrix, _config(), rng=8).run(1)
        b = DynamicNeighborVivaldi(small_internet_matrix, _config(), rng=8).run(1)
        assert a[1].neighbor_lists == b[1].neighbor_lists
        assert np.allclose(a[1].predicted, b[1].predicted)

    def test_kernel_passthrough(self, small_internet_matrix):
        reference = DynamicNeighborVivaldi(
            small_internet_matrix, _config(), rng=0, kernel="reference"
        )
        assert reference.system.kernel == "reference"
        assert DynamicNeighborVivaldi(small_internet_matrix, _config(), rng=0).system.kernel == "batched"

    def test_refinement_dedupes_duplicate_neighbors(self, small_internet_matrix):
        """Externally-set duplicate entries never survive into refined lists."""
        dynamic = DynamicNeighborVivaldi(
            small_internet_matrix, _config(period=5, neighbors=4), rng=12
        )
        dynamic.run(0)
        n = small_internet_matrix.n_nodes
        duplicated = [[(i + 1) % n, (i + 1) % n, (i + 2) % n] for i in range(n)]
        dynamic.system.set_neighbors(duplicated)
        snapshots = dynamic.run(1)
        for i, kept in enumerate(snapshots[-1].neighbor_lists):
            assert len(set(kept)) == len(kept)
            assert i not in kept

    def test_refinement_keeps_largest_ratio_candidates(self, small_internet_matrix):
        """The vectorised ranking keeps exactly the k largest-ratio pool edges."""
        dynamic = DynamicNeighborVivaldi(
            small_internet_matrix, _config(period=10, neighbors=6), rng=9
        )
        dynamic.run(0)
        measured = small_internet_matrix.values
        # Rank against the same coordinates the refinement sees (the
        # snapshot's predicted matrix is re-converged *after* refinement,
        # so it cannot be used for this check).
        predicted = dynamic.system.predicted_matrix()
        previous = dynamic.system.neighbors
        refined = dynamic._refine_neighbors()

        def ratio(i, j):
            d = measured[i, j]
            return predicted[i, j] / d if np.isfinite(d) and d > 0 else np.inf

        for i, kept in enumerate(refined):
            assert len(kept) == 6
            assert i not in kept
            assert len(set(kept)) == len(kept)
            # Every survivor must outrank (or tie) every dropped member of
            # the previous neighbour set, because the previous set was
            # fully contained in the candidate pool.
            dropped = [j for j in previous[i] if j not in kept]
            if dropped and kept:
                worst_kept = min(ratio(i, j) for j in kept)
                best_dropped = max(ratio(i, j) for j in dropped)
                assert worst_kept >= best_dropped - 1e-12

    def test_refinement_handles_ragged_neighbor_lists(self, small_internet_matrix):
        """External ragged lists take the per-row fallback path unchanged."""
        dynamic = DynamicNeighborVivaldi(
            small_internet_matrix, _config(period=5, neighbors=4), rng=10
        )
        dynamic.run(0)
        n = small_internet_matrix.n_nodes
        ragged = [
            [(i + 1) % n] if i % 3 else [(i + 1) % n, (i + 2) % n]
            for i in range(n)
        ]
        dynamic.system.set_neighbors(ragged)
        snapshots = dynamic.run(1)
        for i, kept in enumerate(snapshots[-1].neighbor_lists):
            assert 1 <= len(kept) <= 4
            assert i not in kept
