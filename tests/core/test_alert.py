"""Tests for repro.core.alert."""

import numpy as np
import pytest

from repro.coords.base import MatrixPredictor
from repro.core.alert import TIVAlert, severity_vs_prediction_ratio
from repro.errors import AlertError


@pytest.fixture(scope="module")
def internet_alert(small_internet_matrix, converged_vivaldi):
    return TIVAlert(small_internet_matrix, converged_vivaldi)


class TestTIVAlertBasics:
    def test_size_mismatch_raises(self, small_internet_matrix):
        with pytest.raises(AlertError):
            TIVAlert(small_internet_matrix, MatrixPredictor(np.zeros((3, 3))))

    def test_ratio_matrix_shape(self, internet_alert, small_internet_matrix):
        ratios = internet_alert.ratio_matrix
        n = small_internet_matrix.n_nodes
        assert ratios.shape == (n, n)
        assert np.all(np.isnan(np.diag(ratios)))

    def test_ratio_accessors(self, internet_alert, converged_vivaldi, small_internet_matrix):
        expected = converged_vivaldi.predict(2, 7) / small_internet_matrix.delay(2, 7)
        assert internet_alert.ratio(2, 7) == pytest.approx(expected)
        assert internet_alert.predicted_delay(2, 7) == pytest.approx(converged_vivaldi.predict(2, 7))

    def test_is_alert_threshold(self, internet_alert):
        ratios = internet_alert.ratio_matrix
        iu = np.triu_indices_from(ratios, k=1)
        finite = np.isfinite(ratios[iu])
        i, j = iu[0][finite][0], iu[1][finite][0]
        value = internet_alert.ratio(i, j)
        assert internet_alert.is_alert(i, j, threshold=value + 0.01)
        assert not internet_alert.is_alert(i, j, threshold=value - 0.01)

    def test_is_alert_invalid_threshold(self, internet_alert):
        with pytest.raises(AlertError):
            internet_alert.is_alert(0, 1, threshold=0.0)

    def test_alerted_edges_monotone_in_threshold(self, internet_alert):
        small = internet_alert.alerted_edges(threshold=0.3)
        large = internet_alert.alerted_edges(threshold=0.8)
        assert small <= large

    def test_from_ratio_matrix(self, small_internet_matrix):
        n = small_internet_matrix.n_nodes
        ratios = np.full((n, n), 1.0)
        np.fill_diagonal(ratios, np.nan)
        alert = TIVAlert.from_ratio_matrix(small_internet_matrix, ratios)
        assert alert.ratio(0, 1) == 1.0
        assert alert.alerted_edges(threshold=0.5) == set()

    def test_from_ratio_matrix_bad_shape(self, small_internet_matrix):
        with pytest.raises(AlertError):
            TIVAlert.from_ratio_matrix(small_internet_matrix, np.ones((3, 3)))


class TestAlertEvaluation:
    def test_evaluation_shapes(self, internet_alert, small_internet_severity):
        evaluation = internet_alert.evaluate(small_internet_severity, target_fraction=0.1)
        assert evaluation.thresholds.shape == evaluation.accuracy.shape
        assert evaluation.thresholds.shape == evaluation.recall.shape
        assert evaluation.target_fraction == 0.1

    def test_recall_monotone_in_threshold(self, internet_alert, small_internet_severity):
        evaluation = internet_alert.evaluate(small_internet_severity, target_fraction=0.1)
        assert np.all(np.diff(evaluation.recall) >= -1e-12)
        assert np.all(np.diff(evaluation.alert_fraction) >= -1e-12)

    def test_bounds(self, internet_alert, small_internet_severity):
        evaluation = internet_alert.evaluate(small_internet_severity, target_fraction=0.05)
        finite_acc = evaluation.accuracy[~np.isnan(evaluation.accuracy)]
        assert np.all((finite_acc >= 0) & (finite_acc <= 1))
        assert np.all((evaluation.recall >= 0) & (evaluation.recall <= 1))

    def test_alert_beats_random_guessing(self, internet_alert, small_internet_severity):
        """The paper's core claim: alerted edges are enriched in severe TIVs."""
        fraction = 0.1
        evaluation = internet_alert.evaluate(small_internet_severity, target_fraction=fraction)
        mask = evaluation.alert_fraction > 0.005
        assert mask.any()
        # Precision of a random alert would equal the target fraction.
        assert np.nanmax(evaluation.accuracy[mask]) > fraction * 1.5

    def test_custom_thresholds(self, internet_alert, small_internet_severity):
        evaluation = internet_alert.evaluate(
            small_internet_severity, target_fraction=0.2, thresholds=[0.2, 0.6]
        )
        assert evaluation.thresholds.tolist() == [0.2, 0.6]

    def test_invalid_thresholds_raise(self, internet_alert, small_internet_severity):
        with pytest.raises(AlertError):
            internet_alert.evaluate(small_internet_severity, thresholds=[0.0, 0.5])

    def test_mismatched_severity_raises(self, internet_alert, euclidean_matrix):
        from repro.tiv.severity import compute_tiv_severity

        other = compute_tiv_severity(euclidean_matrix)
        with pytest.raises(AlertError):
            internet_alert.evaluate(other)


class TestSeverityVsRatio:
    def test_binned_output(self, small_internet_matrix, small_internet_severity, internet_alert):
        stats = severity_vs_prediction_ratio(
            small_internet_matrix, small_internet_severity, internet_alert
        )
        assert stats.n_bins == 50  # 0..5 in steps of 0.1
        assert stats.counts.sum() > 0

    def test_shrunk_edges_have_higher_severity(
        self, small_internet_matrix, small_internet_severity, internet_alert
    ):
        """Fig. 19's trend: small prediction ratio -> high TIV severity."""
        iu = np.triu_indices(small_internet_matrix.n_nodes, k=1)
        ratios = internet_alert.ratio_matrix[iu]
        severities = small_internet_severity.severity[iu]
        valid = np.isfinite(ratios) & np.isfinite(severities)
        ratios, severities = ratios[valid], severities[valid]
        shrunk = severities[ratios <= 0.6]
        preserved = severities[ratios >= 0.9]
        assert shrunk.size > 0 and preserved.size > 0
        assert shrunk.mean() > preserved.mean()
