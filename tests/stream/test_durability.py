"""Checkpoint + WAL durability: round-trips, corruption, bit-identical recovery."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StreamError
from repro.stream import (
    DefenseConfig,
    MeasurementEvent,
    NodeJoin,
    NodeLeave,
    StreamServiceConfig,
    WalWriter,
    load_checkpoint,
    read_wal,
    recover,
    replay_trace,
    save_checkpoint,
    state_fingerprint,
    synthesize_trace,
)
from repro.stream.durability import CHECKPOINT_SCHEMA
from repro.stream.service import StreamCoordinateService

DEFENDED = StreamServiceConfig(defense=DefenseConfig())


def _busy_service(n_events=300):
    trace = synthesize_trace(n_nodes=16, seed=2, duration=30.0, churn=0.2)
    service = StreamCoordinateService(config=DEFENDED, rng=4)
    for event in trace.events[:n_events]:
        service.apply(event)
    return service


class TestCheckpointRoundTrip:
    def test_round_trip_is_bit_identical(self, tmp_path):
        service = _busy_service()
        path = tmp_path / "ck.npz"
        save_checkpoint(service, path)
        restored = load_checkpoint(path)
        assert state_fingerprint(restored) == state_fingerprint(service)
        assert restored.n_events == service.n_events
        assert restored.clock == service.clock

    def test_restored_service_evolves_identically(self, tmp_path):
        trace = synthesize_trace(n_nodes=16, seed=2, duration=30.0, churn=0.2)
        service = StreamCoordinateService(config=DEFENDED, rng=4)
        for event in trace.events[:200]:
            service.apply(event)
        path = tmp_path / "ck.npz"
        save_checkpoint(service, path)
        restored = load_checkpoint(path)
        for event in trace.events[200:260]:
            service.apply(event)
            restored.apply(event)
        assert state_fingerprint(restored) == state_fingerprint(service)

    def test_missing_file_raises_named_stream_error(self, tmp_path):
        with pytest.raises(StreamError, match="nope.npz"):
            load_checkpoint(tmp_path / "nope.npz")

    def test_corrupted_file_raises(self, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(_busy_service(50), path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(StreamError):
            load_checkpoint(path)

    def test_wrong_schema_rejected(self, tmp_path):
        service = _busy_service(50)
        path = tmp_path / "ck.npz"
        save_checkpoint(service, path)
        import numpy as np

        with np.load(path, allow_pickle=False) as payload:
            members = {key: payload[key] for key in payload.files}
        state = json.loads(bytes(members["state"]).decode("utf-8"))
        state["schema"] = "other-thing/v9"
        members["state"] = np.frombuffer(
            json.dumps(state).encode("utf-8"), dtype=np.uint8
        )
        np.savez(path, **members)
        with pytest.raises(StreamError, match="schema"):
            load_checkpoint(path)

    def test_schema_tag_present(self, tmp_path):
        import numpy as np

        path = tmp_path / "ck.npz"
        save_checkpoint(_busy_service(50), path)
        with np.load(path, allow_pickle=False) as payload:
            state = json.loads(bytes(payload["state"]).decode("utf-8"))
        assert state["schema"] == CHECKPOINT_SCHEMA


class TestWal:
    EVENTS = [
        NodeJoin(0.0, 1),
        NodeJoin(0.5, 2),
        MeasurementEvent(1.0, 1, 2, 20.0),
        NodeLeave(2.0, 2),
    ]

    def test_log_and_read_round_trip(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WalWriter(path) as wal:
            for seq, event in enumerate(self.EVENTS):
                wal.log(seq, event)
        entries = read_wal(path)
        assert [seq for seq, _ in entries] == [0, 1, 2, 3]
        assert [event for _, event in entries] == self.EVENTS

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WalWriter(path) as wal:
            for seq, event in enumerate(self.EVENTS):
                wal.log(seq, event)
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) - 10], encoding="utf-8")
        entries = read_wal(path)
        assert [seq for seq, _ in entries] == [0, 1, 2]

    def test_mid_file_corruption_raises_with_line_number(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WalWriter(path) as wal:
            for seq, event in enumerate(self.EVENTS):
                wal.log(seq, event)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[1] = "{not json"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(StreamError, match="line 2"):
            read_wal(path)

    def test_sequence_gap_detected(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WalWriter(path) as wal:
            wal.log(0, self.EVENTS[0])
            wal.log(1, self.EVENTS[1])
            wal.log(5, self.EVENTS[2])
        with pytest.raises(StreamError, match="gap"):
            read_wal(path)

    def test_append_mode_continues_the_log(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        with WalWriter(path) as wal:
            wal.log(0, self.EVENTS[0])
        with WalWriter(path, append=True) as wal:
            wal.log(1, self.EVENTS[1])
        assert [seq for seq, _ in read_wal(path)] == [0, 1]


class TestRecovery:
    def test_recover_checkpoint_plus_wal_suffix(self, tmp_path):
        trace = synthesize_trace(n_nodes=16, seed=2, duration=30.0, churn=0.2)
        ck = tmp_path / "ck.npz"
        wal = tmp_path / "wal.jsonl"
        crashed = replay_trace(
            trace,
            config=DEFENDED,
            checkpoint_path=ck,
            wal_path=wal,
            checkpoint_every=100,
            stop_after_events=250,
        )
        assert crashed.totals["stopped_after_events"] == 250
        recovered = recover(ck, wal)
        # The WAL replays the suffix past the last periodic checkpoint.
        assert recovered.n_events == 250
        direct = StreamCoordinateService(config=DEFENDED, rng=0)
        for event in trace.events[:250]:
            direct.apply(event)
        assert state_fingerprint(recovered) == state_fingerprint(direct)

    def test_wal_gap_after_checkpoint_refused(self, tmp_path):
        trace = synthesize_trace(n_nodes=16, seed=2, duration=30.0)
        ck = tmp_path / "ck.npz"
        wal = tmp_path / "wal.jsonl"
        replay_trace(
            trace,
            config=DEFENDED,
            checkpoint_path=ck,
            wal_path=wal,
            checkpoint_every=100,
            stop_after_events=150,
        )
        # Drop WAL entries right after the checkpoint's cut: recovery must
        # refuse to silently skip events.
        entries = [
            json.loads(line)
            for line in wal.read_text(encoding="utf-8").splitlines()
        ]
        kept = [e for e in entries if e["seq"] < 100 or e["seq"] >= 120]
        wal.write_text(
            "".join(json.dumps(e) + "\n" for e in kept), encoding="utf-8"
        )
        with pytest.raises(StreamError):
            recover(ck, wal)

    def test_resumed_replay_matches_uninterrupted(self, tmp_path):
        trace = synthesize_trace(n_nodes=24, seed=5, duration=30.0, churn=0.2)
        uninterrupted = replay_trace(trace, config=DEFENDED)
        ck = tmp_path / "ck.npz"
        wal = tmp_path / "wal.jsonl"
        replay_trace(
            trace,
            config=DEFENDED,
            checkpoint_path=ck,
            wal_path=wal,
            checkpoint_every=100,
            stop_after_events=333,
        )
        resumed = replay_trace(
            trace,
            config=DEFENDED,
            checkpoint_path=ck,
            wal_path=wal,
            resume=True,
        )
        assert resumed.totals["resumed_at_event"] == 333
        assert (
            resumed.totals["state_fingerprint"]
            == uninterrupted.totals["state_fingerprint"]
        )
        # Post-cut windows carry identical live metrics.
        assert (
            resumed.windows[-1].median_relative_error
            == uninterrupted.windows[-1].median_relative_error
        )

    def test_resume_without_checkpoint_rejected(self):
        trace = synthesize_trace(n_nodes=16, seed=2, duration=10.0)
        with pytest.raises(StreamError, match="resume"):
            replay_trace(trace, config=DEFENDED, resume=True)


class TestCutPointProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=3),
        churn=st.sampled_from([0.0, 0.2]),
        cut_fraction=st.floats(min_value=0.1, max_value=0.9),
    )
    def test_any_cut_point_recovers_bit_identically(
        self, tmp_path_factory, seed, churn, cut_fraction
    ):
        """Crash at *any* event index: checkpoint+WAL recovery must land on
        exactly the state an uninterrupted run reaches at that index."""
        tmp_path = tmp_path_factory.mktemp("cut")
        trace = synthesize_trace(
            n_nodes=16, seed=seed, duration=20.0, churn=churn
        )
        cut = max(1, int(trace.n_events * cut_fraction))
        ck = tmp_path / "ck.npz"
        wal = tmp_path / "wal.jsonl"
        replay_trace(
            trace,
            config=DEFENDED,
            checkpoint_path=ck,
            wal_path=wal,
            # Small enough that even the earliest cut point has at least
            # one periodic checkpoint behind it (a simulated crash never
            # writes a graceful final one).
            checkpoint_every=16,
            stop_after_events=cut,
        )
        recovered = recover(ck, wal)
        direct = StreamCoordinateService(config=DEFENDED, rng=0)
        for event in trace.events[:cut]:
            direct.apply(event)
        assert state_fingerprint(recovered) == state_fingerprint(direct)
