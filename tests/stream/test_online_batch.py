"""Batch-query equivalence: the serving hot path must bit-match the scalar path.

``closest_batch`` / ``distances_matrix`` / ``distance_batch`` answer with
the same einsum formulation the scalar queries use, so every value is
required to be *bit-identical* (plain ``==``, no approx) to the
per-query answer — across churny populations, seeds, and slot reuse
after leaves.
"""

import numpy as np
import pytest

from repro.coords.online import OnlineVivaldi, OnlineVivaldiConfig
from repro.errors import EmbeddingError


def churny_embedding(seed: int, n: int = 40, use_height: bool = True) -> OnlineVivaldi:
    """A live embedding shaken by measurements, leaves and rejoins."""
    emb = OnlineVivaldi(OnlineVivaldiConfig(use_height=use_height), rng=seed)
    rng = np.random.default_rng(seed + 1000)
    points = rng.uniform(0.0, 120.0, size=(n, 3))
    truth = np.sqrt(((points[:, None] - points[None, :]) ** 2).sum(-1)) + 1.0
    for node in range(n):
        emb.join(node, t=0.0)
    for t in range(1, 30):
        for src in emb.active_nodes():
            others = [x for x in emb.active_nodes() if x != src]
            dst = others[int(rng.integers(0, len(others)))]
            emb.observe(src, dst, float(truth[src % n, dst % n]), t=float(t))
        if t == 10:
            # Churn out a third of the population...
            for node in range(0, n, 3):
                emb.leave(node)
        if t == 18:
            # ... and bring them back, reusing the freed slots (plus a few
            # fresh ids that take whatever slots remain).
            for node in range(0, n, 3):
                emb.join(node, t=float(t))
            for extra in range(n, n + 4):
                emb.join(extra, t=float(t))
    return emb


@pytest.mark.parametrize("seed", [0, 1, 7])
@pytest.mark.parametrize("use_height", [True, False])
class TestBatchEquivalence:
    def test_closest_batch_bit_matches_scalar(self, seed, use_height):
        emb = churny_embedding(seed, use_height=use_height)
        nodes = emb.active_nodes()
        for k in (1, 3, len(nodes)):
            batch = emb.closest_batch(nodes, k=k)
            assert len(batch) == len(nodes)
            for node, got in zip(nodes, batch):
                assert got == emb.closest(node, k=k)

    def test_distances_matrix_bit_matches_distances_from(self, seed, use_height):
        emb = churny_embedding(seed, use_height=use_height)
        nodes = emb.active_nodes()
        queries = nodes[::3]
        active, matrix = emb.distances_matrix(queries)
        assert active == nodes
        assert matrix.shape == (len(queries), len(active))
        for qi, node in enumerate(queries):
            scalar = emb.distances_from(node)
            for j, other in enumerate(active):
                expected = 0.0 if other == node else scalar[other]
                assert matrix[qi, j] == expected

    def test_distance_batch_bit_matches_distance(self, seed, use_height):
        emb = churny_embedding(seed, use_height=use_height)
        nodes = emb.active_nodes()
        rng = np.random.default_rng(seed)
        picks = rng.integers(0, len(nodes), size=(64, 2))
        pairs = [(nodes[a], nodes[b]) for a, b in picks] + [(nodes[0], nodes[0])]
        values = emb.distance_batch(pairs)
        assert values.shape == (len(pairs),)
        for (a, b), got in zip(pairs, values):
            assert got == emb.distance(a, b)


class TestBatchEdgeCases:
    def test_empty_batches(self):
        emb = churny_embedding(0, n=10)
        assert emb.closest_batch([], k=2) == []
        active, matrix = emb.distances_matrix([])
        assert active == emb.active_nodes()
        assert matrix.shape == (0, len(active))
        assert emb.distance_batch([]).shape == (0,)

    def test_closest_batch_rejects_bad_k(self):
        emb = churny_embedding(0, n=10)
        with pytest.raises(EmbeddingError, match="k must be >= 1"):
            emb.closest_batch(emb.active_nodes(), k=0)

    def test_closest_batch_rejects_inactive_query(self):
        emb = churny_embedding(0, n=10)
        with pytest.raises(EmbeddingError, match="not active"):
            emb.closest_batch([99999], k=1)

    def test_k_is_clamped_to_population(self):
        emb = churny_embedding(1, n=10)
        nodes = emb.active_nodes()
        batch = emb.closest_batch(nodes, k=10 * len(nodes))
        for node, got in zip(nodes, batch):
            assert len(got) == len(nodes) - 1
            assert got == emb.closest(node, k=10 * len(nodes))

    def test_string_ids_fall_back_to_the_scalar_path(self):
        emb = OnlineVivaldi(rng=0)
        for node in ("a", "b", "c", 4):
            emb.join(node)
        emb.observe("a", "b", 25.0, t=1.0)
        batch = emb.closest_batch(["a", 4], k=2)
        assert batch == [emb.closest("a", k=2), emb.closest(4, k=2)]

    def test_cache_invalidated_by_membership_changes(self):
        emb = churny_embedding(2, n=12)
        before = emb.closest_batch(emb.active_nodes(), k=2)
        victim = emb.active_nodes()[0]
        emb.leave(victim)
        after = emb.closest_batch(emb.active_nodes(), k=2)
        assert victim not in [node for row in after for node, _ in row]
        assert len(after) == len(before) - 1
        emb.join(victim, t=100.0)
        again = emb.closest_batch(emb.active_nodes(), k=2)
        assert len(again) == len(before)
