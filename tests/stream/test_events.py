"""Unit tests for trace events, validation, persistence and synthesis."""

import json

import numpy as np
import pytest

from repro.errors import StreamError
from repro.stream import (
    MeasurementEvent,
    NodeJoin,
    NodeLeave,
    Trace,
    load_trace,
    save_trace,
    synthesize_trace,
)
from repro.stream.events import TRACE_SCHEMA


def tiny_truth(n=4, seed=0):
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, 50.0, size=(n, 2))
    return np.sqrt(((points[:, None] - points[None, :]) ** 2).sum(-1))


class TestTraceValidation:
    def test_events_must_be_time_ordered(self):
        events = [NodeJoin(1.0, 0), MeasurementEvent(0.5, 0, 1, 10.0)]
        with pytest.raises(StreamError, match="ordered"):
            Trace(events, tiny_truth(), {})

    def test_node_ids_must_be_in_range(self):
        events = [NodeJoin(0.0, 99)]
        with pytest.raises(StreamError):
            Trace(events, tiny_truth(), {})

    def test_properties(self):
        events = [
            NodeJoin(0.0, 0),
            NodeJoin(0.0, 1),
            MeasurementEvent(1.5, 0, 1, 12.0),
            NodeLeave(3.0, 1),
        ]
        trace = Trace(events, tiny_truth(), {"preset": "test"})
        assert trace.n_nodes == 4
        assert trace.n_events == 4
        assert trace.duration == pytest.approx(3.0)
        assert trace.counts() == {"measurements": 1, "joins": 2, "leaves": 1}


class TestPersistence:
    def test_roundtrip_is_exact(self, tmp_path):
        trace = synthesize_trace(n_nodes=12, seed=5, duration=8.0, churn=0.3)
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.events == trace.events
        assert np.array_equal(
            loaded.ground_truth, trace.ground_truth, equal_nan=True
        )
        assert loaded.meta == trace.meta

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(StreamError, match="not found"):
            load_trace(tmp_path / "nope.npz")

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        meta = np.frombuffer(
            json.dumps({"schema": "other/v9"}).encode(), dtype=np.uint8
        )
        np.savez_compressed(
            path,
            kind=np.zeros(0, dtype=np.int8),
            t=np.zeros(0),
            a=np.zeros(0, dtype=np.int64),
            b=np.zeros(0, dtype=np.int64),
            rtt=np.zeros(0),
            ground_truth=tiny_truth(),
            meta=meta,
        )
        with pytest.raises(StreamError, match=TRACE_SCHEMA.split("/")[0]):
            load_trace(path)

    def test_non_trace_npz_rejected(self, tmp_path):
        path = tmp_path / "matrix.npz"
        np.savez_compressed(path, values=tiny_truth())
        with pytest.raises(StreamError):
            load_trace(path)


class TestSynthesis:
    def test_deterministic_per_seed(self):
        a = synthesize_trace(n_nodes=16, seed=3, duration=10.0, churn=0.25)
        b = synthesize_trace(n_nodes=16, seed=3, duration=10.0, churn=0.25)
        assert a.events == b.events
        assert np.array_equal(a.ground_truth, b.ground_truth, equal_nan=True)

    def test_seeds_differ(self):
        a = synthesize_trace(n_nodes=16, seed=3, duration=10.0)
        b = synthesize_trace(n_nodes=16, seed=4, duration=10.0)
        assert a.events != b.events

    def test_everyone_joins_at_time_zero(self):
        trace = synthesize_trace(n_nodes=10, seed=0, duration=5.0)
        joins = [e for e in trace.events if isinstance(e, NodeJoin)]
        assert {e.node for e in joins} == set(range(10))
        assert all(e.t == 0.0 for e in joins)

    def test_churn_schedules_leaves_and_rejoins(self):
        trace = synthesize_trace(n_nodes=20, seed=1, duration=40.0, churn=0.25)
        counts = trace.counts()
        assert counts["leaves"] == 5
        assert counts["joins"] == 25  # 20 initial + 5 rejoins
        leaves = [e for e in trace.events if isinstance(e, NodeLeave)]
        assert all(0 < e.t < 40.0 for e in leaves)

    def test_zero_churn_has_no_leaves(self):
        trace = synthesize_trace(n_nodes=10, seed=0, duration=10.0, churn=0.0)
        assert trace.counts()["leaves"] == 0

    def test_rate_scales_measurements(self):
        slow = synthesize_trace(n_nodes=10, seed=0, duration=10.0, rate=1)
        fast = synthesize_trace(n_nodes=10, seed=0, duration=10.0, rate=3)
        assert (
            fast.counts()["measurements"] >= 2.5 * slow.counts()["measurements"]
        )

    def test_scenario_changes_the_ground_truth(self):
        plain = synthesize_trace(n_nodes=16, seed=2, duration=5.0)
        heavy = synthesize_trace(
            n_nodes=16, seed=2, duration=5.0, scenario="heavy_tiv"
        )
        assert not np.array_equal(
            plain.ground_truth, heavy.ground_truth, equal_nan=True
        )
        assert heavy.meta["scenario"] == "heavy_tiv"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_nodes=1),
            dict(duration=0.0),
            dict(rate=0),
            dict(churn=1.5),
            dict(churn=-0.1),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(StreamError):
            synthesize_trace(**kwargs)


class TestDamagedTraceFiles:
    """Every damaged-file failure mode surfaces as a StreamError naming
    the path — never a raw zipfile/numpy/KeyError traceback."""

    def _good_path(self, tmp_path):
        trace = synthesize_trace(n_nodes=12, seed=5, duration=8.0, churn=0.3)
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        return path

    def test_truncated_archive(self, tmp_path):
        path = self._good_path(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 3])
        with pytest.raises(StreamError, match="truncated or corrupted") as excinfo:
            load_trace(path)
        assert str(path) in str(excinfo.value)

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(StreamError, match="truncated or corrupted"):
            load_trace(path)

    def test_missing_member_named(self, tmp_path):
        path = self._good_path(tmp_path)
        with np.load(path) as data:
            members = {k: data[k] for k in data.files if k != "rtt"}
        np.savez_compressed(path, **members)
        with pytest.raises(StreamError, match="missing"):
            load_trace(path)

    def test_undecodable_meta_blob(self, tmp_path):
        path = self._good_path(tmp_path)
        with np.load(path) as data:
            members = {k: data[k] for k in data.files}
        members["meta"] = np.frombuffer(b"{broken json", dtype=np.uint8)
        np.savez_compressed(path, **members)
        with pytest.raises(StreamError, match="truncated or corrupted"):
            load_trace(path)

    def test_inconsistent_arrays_rejected(self, tmp_path):
        path = self._good_path(tmp_path)
        with np.load(path) as data:
            members = {k: data[k] for k in data.files}
        members["t"] = members["t"][:-2]  # shorter than kind/a/b/rtt
        np.savez_compressed(path, **members)
        with pytest.raises(StreamError):
            load_trace(path)

    def test_unordered_flag_round_trips(self, tmp_path):
        from repro.stream import FaultSpec, apply_faults

        trace = synthesize_trace(n_nodes=12, seed=5, duration=8.0)
        skewed = apply_faults(
            trace, FaultSpec(skew_fraction=0.5, max_skew_seconds=3.0, seed=1)
        )
        assert not skewed.ordered
        path = tmp_path / "skewed.npz"
        save_trace(skewed, path)
        loaded = load_trace(path)
        assert not loaded.ordered
        assert loaded.out_of_order_count == skewed.out_of_order_count
