"""Unit tests for the per-observation online Vivaldi embedding."""

import numpy as np
import pytest

from repro.coords.online import OnlineVivaldi, OnlineVivaldiConfig
from repro.errors import EmbeddingError


class TestConfigValidation:
    def test_defaults_are_paper_faithful(self):
        config = OnlineVivaldiConfig()
        assert config.dimension == 5
        assert config.cc == 0.25
        assert config.ce == 0.25
        assert config.rho == 150.0
        assert config.use_height
        assert config.initial_error == 1.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(dimension=0),
            dict(cc=0.0),
            dict(ce=1.5),
            dict(rho=-1.0),
            dict(min_height=0.0),
            dict(initial_error=0.0),
            dict(min_error=2.0),  # above initial_error
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(EmbeddingError):
            OnlineVivaldiConfig(**kwargs)


class TestMembership:
    def test_join_initialises_fresh_state(self):
        emb = OnlineVivaldi(rng=0)
        emb.join("a", t=3.0)
        assert emb.is_active("a")
        assert emb.n_active == 1
        assert np.allclose(emb.coordinate_of("a"), 0.0)
        assert emb.error_of("a") == emb.config.initial_error
        assert emb.height_of("a") == emb.config.min_height
        assert emb.update_count_of("a") == 0

    def test_double_join_rejected(self):
        emb = OnlineVivaldi(rng=0)
        emb.join(1)
        with pytest.raises(EmbeddingError, match="already active"):
            emb.join(1)

    def test_leave_unknown_rejected(self):
        emb = OnlineVivaldi(rng=0)
        with pytest.raises(EmbeddingError, match="not active"):
            emb.leave(7)

    def test_rejoin_resets_state(self):
        emb = OnlineVivaldi(rng=0)
        emb.join(1)
        emb.join(2)
        for _ in range(10):
            emb.observe(1, 2, 40.0, t=1.0)
        assert emb.update_count_of(1) == 10
        emb.leave(1)
        emb.join(1, t=2.0)
        assert np.allclose(emb.coordinate_of(1), 0.0)
        assert emb.error_of(1) == emb.config.initial_error
        assert emb.update_count_of(1) == 0

    def test_capacity_grows_past_initial(self):
        emb = OnlineVivaldi(rng=0, capacity=2)
        for node in range(10):
            emb.join(node)
        assert emb.n_active == 10
        assert emb.active_nodes() == list(range(10))

    def test_slots_reused_after_leave(self):
        emb = OnlineVivaldi(rng=0, capacity=4)
        for node in range(4):
            emb.join(node)
        emb.leave(1)
        emb.join("returning")  # must reuse slot 1, not grow
        assert emb.n_active == 4
        assert emb._coords.shape[0] == 4


class TestObservation:
    def test_observation_moves_only_the_source(self):
        emb = OnlineVivaldi(OnlineVivaldiConfig(rho=0.0), rng=0)
        emb.join(1)
        emb.join(2)
        emb.observe(1, 2, 50.0, t=1.0)
        assert np.linalg.norm(emb.coordinate_of(1)) > 0
        assert np.allclose(emb.coordinate_of(2), 0.0)
        assert emb.update_count_of(1) == 1
        assert emb.update_count_of(2) == 0

    def test_observation_of_inactive_node_rejected(self):
        emb = OnlineVivaldi(rng=0)
        emb.join(1)
        with pytest.raises(EmbeddingError, match="not active"):
            emb.observe(1, 99, 10.0)

    def test_nonpositive_and_nan_rtts_are_ignored(self):
        emb = OnlineVivaldi(rng=0)
        emb.join(1)
        emb.join(2)
        for rtt in (0.0, -5.0, float("nan"), float("inf")):
            assert emb.observe(1, 2, rtt) == 0.0
        assert emb.update_count_of(1) == 0

    def test_error_stays_capped(self):
        emb = OnlineVivaldi(rng=3)
        emb.join(1)
        emb.join(2)
        # Wildly inconsistent measurements: the error estimate must never
        # exceed the initial_error cap (the Ledlie et al. max_error rule).
        rng = np.random.default_rng(0)
        for _ in range(200):
            emb.observe(1, 2, float(rng.uniform(1.0, 500.0)), t=1.0)
            assert emb.error_of(1) <= emb.config.initial_error + 1e-12

    def test_height_never_drops_below_floor(self):
        emb = OnlineVivaldi(rng=5)
        nodes = list(range(6))
        for node in nodes:
            emb.join(node)
        rng = np.random.default_rng(1)
        for _ in range(300):
            a, b = rng.choice(6, size=2, replace=False)
            emb.observe(int(a), int(b), float(rng.uniform(5.0, 80.0)))
        for node in nodes:
            assert emb.height_of(node) >= emb.config.min_height

    def test_distance_includes_both_heights(self):
        emb = OnlineVivaldi(rng=0)
        emb.join(1)
        emb.join(2)
        emb.observe(1, 2, 30.0, t=1.0)
        i, j = emb._slots[1], emb._slots[2]
        euclid = float(np.linalg.norm(emb._coords[i] - emb._coords[j]))
        assert emb.distance(1, 2) == pytest.approx(
            euclid + emb.height_of(1) + emb.height_of(2)
        )
        assert emb.distance(1, 1) == 0.0

    def test_rho_gravity_bounds_the_norm(self):
        # With a tight rho the pull grows quadratically: coordinates
        # cannot wander far beyond rho even under one-sided measurements.
        emb = OnlineVivaldi(
            OnlineVivaldiConfig(rho=50.0, use_height=False), rng=2
        )
        emb.join(1)
        emb.join(2)
        for _ in range(500):
            emb.observe(1, 2, 400.0, t=1.0)
        assert np.linalg.norm(emb.coordinate_of(1)) < 250.0

    def test_reduces_error_on_euclidean_data(self):
        # A TIV-free metric space must embed well through the pure
        # per-observation path.
        rng = np.random.default_rng(4)
        points = rng.uniform(0.0, 100.0, size=(16, 3))
        truth = np.sqrt(((points[:, None] - points[None, :]) ** 2).sum(-1))
        emb = OnlineVivaldi(
            OnlineVivaldiConfig(use_height=False, rho=0.0), rng=9
        )
        for node in range(16):
            emb.join(node)
        for _ in range(150):
            for src in range(16):
                dst = int(rng.integers(0, 15))
                dst += dst >= src
                emb.observe(src, dst, float(truth[src, dst]))
        errors = [
            abs(emb.distance(a, b) - truth[a, b]) / truth[a, b]
            for a in range(16)
            for b in range(a + 1, 16)
        ]
        assert float(np.median(errors)) < 0.1


class TestQueries:
    @pytest.fixture()
    def localized(self):
        rng = np.random.default_rng(8)
        points = rng.uniform(0.0, 100.0, size=(12, 2))
        truth = np.sqrt(((points[:, None] - points[None, :]) ** 2).sum(-1))
        emb = OnlineVivaldi(OnlineVivaldiConfig(use_height=False, rho=0.0), rng=1)
        for node in range(12):
            emb.join(node)
        for _ in range(120):
            for src in range(12):
                dst = int(rng.integers(0, 11))
                dst += dst >= src
                emb.observe(src, dst, float(truth[src, dst]))
        return emb, truth

    def test_closest_orders_by_predicted_delay(self, localized):
        emb, _ = localized
        ranked = emb.closest(0, k=11)
        assert len(ranked) == 11
        delays = [delay for _, delay in ranked]
        assert delays == sorted(delays)
        assert emb.closest(0, k=1) == ranked[:1]

    def test_distances_from_matches_pairwise_distance(self, localized):
        emb, _ = localized
        dists = emb.distances_from(3)
        assert set(dists) == set(range(12)) - {3}
        for other, d in dists.items():
            assert d == pytest.approx(emb.distance(3, other))

    def test_staleness_ages_from_last_update(self):
        emb = OnlineVivaldi(rng=0)
        emb.join(1, t=0.0)
        emb.join(2, t=4.0)
        emb.observe(1, 2, 20.0, t=10.0)
        ages = emb.staleness(now=12.0)
        assert ages[1] == pytest.approx(2.0)  # updated at t=10
        assert ages[2] == pytest.approx(8.0)  # never updated since joining

    def test_staleness_rejects_a_clock_behind_the_updates(self):
        # Regression: a `now` earlier than the latest update used to return
        # silently negative ages; it must raise instead.
        emb = OnlineVivaldi(rng=0)
        emb.join(1, t=0.0)
        emb.join(2, t=0.0)
        emb.observe(1, 2, 20.0, t=10.0)
        with pytest.raises(EmbeddingError, match="earlier than the latest"):
            emb.staleness(now=5.0)
        # Exactly at the latest update is fine (zero age, not negative).
        assert emb.staleness(now=10.0)[1] == 0.0
        # And an empty population never raises.
        assert OnlineVivaldi(rng=0).staleness(now=-100.0) == {}

    def test_closest_breaks_ties_numerically_for_int_ids(self):
        # Regression: ties used to sort by str(node), ranking 10 before 2.
        emb = OnlineVivaldi(rng=0)
        for node in (0, 10, 2, 30):
            emb.join(node)
        # No observations: every node sits at the origin with equal height,
        # so all predicted delays from 0 tie exactly.
        ranked = emb.closest(0, k=3)
        assert [node for node, _ in ranked] == [2, 10, 30]

    def test_closest_tie_break_orders_ints_before_strings(self):
        emb = OnlineVivaldi(rng=0)
        for node in ("b", 7, "a", 2):
            emb.join(node)
        ranked = emb.closest(7, k=3)
        assert [node for node, _ in ranked] == [2, "a", "b"]

    def test_snapshot_is_a_copy(self):
        emb = OnlineVivaldi(rng=0)
        emb.join(1)
        emb.join(2)
        emb.observe(1, 2, 25.0, t=1.0)
        snap = emb.snapshot()
        snap["coordinates"][:] = 0.0
        assert np.linalg.norm(emb.coordinate_of(1)) > 0
        assert snap["nodes"] == [1, 2]


class TestSlotLifecycleUnderMassChurn:
    """The slot allocator under flapping populations: capacity tracks the
    *concurrent* peak, freed slots are recycled deterministically, and
    surviving nodes' state is never disturbed by other nodes' churn."""

    def test_mass_leave_join_cycles_bound_capacity(self):
        embedding = OnlineVivaldi(rng=0, capacity=4)
        rng = np.random.default_rng(0)
        for cycle in range(20):
            cohort = [f"n{cycle}-{i}" for i in range(8)]
            for node in cohort:
                embedding.join(node, t=float(cycle))
            for a in cohort:
                for b in cohort:
                    if a != b:
                        embedding.observe(a, b, float(rng.uniform(5, 50)), t=float(cycle))
            for node in cohort:
                embedding.leave(node)
        assert embedding.n_active == 0
        # 8 concurrent nodes ever: the arrays never grew past that peak
        # (growth doubles, so the bound is the next power of two of 8).
        assert embedding._coords.shape[0] <= 16

    def test_survivor_state_untouched_by_neighbors_churn(self):
        embedding = OnlineVivaldi(rng=0, capacity=4)
        embedding.join("keeper", t=0.0)
        embedding.join("aux", t=0.0)
        for i in range(30):
            embedding.observe("keeper", "aux", 20.0, t=float(i))
            embedding.observe("aux", "keeper", 20.0, t=float(i))
        coord = embedding.coordinate_of("keeper").copy()
        height = embedding.height_of("keeper")
        error = embedding.error_of("keeper")
        for cycle in range(10):
            node = f"flap{cycle}"
            embedding.join(node, t=50.0 + cycle)
            embedding.leave(node)
        assert np.array_equal(embedding.coordinate_of("keeper"), coord)
        assert embedding.height_of("keeper") == height
        assert embedding.error_of("keeper") == error

    def test_active_nodes_correct_after_interleaved_churn(self):
        embedding = OnlineVivaldi(rng=0, capacity=2)
        alive = set()
        rng = np.random.default_rng(3)
        for step in range(200):
            if alive and rng.uniform() < 0.4:
                node = sorted(alive)[int(rng.integers(len(alive)))]
                embedding.leave(node)
                alive.discard(node)
            else:
                node = int(rng.integers(1000))
                if node not in alive:
                    embedding.join(node, t=float(step))
                    alive.add(node)
        assert embedding.n_active == len(alive)
        assert embedding.active_nodes() == sorted(alive)
        for node in alive:
            assert embedding.is_active(node)

    def test_state_round_trip_preserves_churned_slot_map(self):
        embedding = OnlineVivaldi(rng=0, capacity=2)
        rng = np.random.default_rng(5)
        for i in range(12):
            embedding.join(i, t=float(i))
        for i in range(0, 12, 3):
            embedding.leave(i)
        for _ in range(50):
            a, b = rng.choice(embedding.active_nodes(), size=2, replace=False)
            embedding.observe(int(a), int(b), float(rng.uniform(5, 50)))
        state = embedding.state_dict()
        restored = OnlineVivaldi.from_state(
            state, embedding.config, rng=np.random.default_rng(9)
        )
        assert restored.active_nodes() == embedding.active_nodes()
        assert restored._slots == embedding._slots
        assert restored._free == embedding._free
        for node in embedding.active_nodes():
            assert np.array_equal(
                restored.coordinate_of(node), embedding.coordinate_of(node)
            )
            assert restored.update_count_of(node) == embedding.update_count_of(node)

    def test_rejoin_after_mass_leave_reuses_most_recent_slot(self):
        embedding = OnlineVivaldi(rng=0, capacity=4)
        for i in range(4):
            embedding.join(i)
        slots = dict(embedding._slots)
        for i in range(4):
            embedding.leave(i)
        # LIFO reuse: the last freed slot is handed to the next join.
        embedding.join("fresh")
        assert embedding._slots["fresh"] == slots[3]
