"""Tests for the declarative, seed-deterministic fault injector."""

import dataclasses

import numpy as np
import pytest

from repro.errors import StreamError
from repro.stream import FaultSpec, MeasurementEvent, apply_faults, synthesize_trace


def _measurements(trace):
    return [e for e in trace.events if isinstance(e, MeasurementEvent)]


@pytest.fixture(scope="module")
def clean_trace():
    return synthesize_trace(n_nodes=24, seed=1, duration=30.0, churn=0.1)


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(liar_fraction=-0.1),
            dict(liar_fraction=1.5),
            dict(liar_inflation=0.0),
            dict(spike_fraction=2.0),
            dict(spike_multiplier=0.5),
            dict(skew_fraction=-1.0),
            dict(max_skew_seconds=-1.0),
            dict(duplicate_fraction=1.1),
            dict(flap_count=-1),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(StreamError):
            FaultSpec(**kwargs)

    def test_parse_round_trip(self):
        spec = FaultSpec.parse("liars=0.1, spikes=0.05, flaps=2, seed=7")
        assert spec.liar_fraction == 0.1
        assert spec.spike_fraction == 0.05
        assert spec.flap_count == 2
        assert spec.seed == 7

    @pytest.mark.parametrize("text", ["liars", "liars=x", "teleport=1"])
    def test_parse_rejects_bad_tokens(self, text):
        with pytest.raises(StreamError):
            FaultSpec.parse(text)

    def test_noop_spec(self, clean_trace):
        spec = FaultSpec()
        assert spec.is_noop
        assert apply_faults(clean_trace, spec) is clean_trace


class TestDeterminism:
    def test_same_seed_same_faults(self, clean_trace):
        spec = FaultSpec(liar_fraction=0.2, spike_fraction=0.1, seed=3)
        a = apply_faults(clean_trace, spec)
        b = apply_faults(clean_trace, spec)
        assert a.meta["fault_liars"] == b.meta["fault_liars"]
        assert [
            (e.t, getattr(e, "src", None), getattr(e, "rtt", None)) for e in a.events
        ] == [(e.t, getattr(e, "src", None), getattr(e, "rtt", None)) for e in b.events]

    def test_different_seed_different_faults(self, clean_trace):
        base = FaultSpec(liar_fraction=0.2, seed=3)
        a = apply_faults(clean_trace, base)
        b = apply_faults(clean_trace, dataclasses.replace(base, seed=4))
        assert a.meta["fault_liars"] != b.meta["fault_liars"]


class TestFaultKinds:
    def test_liars_inflate_their_reports(self, clean_trace):
        spec = FaultSpec(liar_fraction=0.25, liar_inflation=5.0, seed=2)
        faulted = apply_faults(clean_trace, spec)
        liars = set(faulted.meta["fault_liars"])
        assert liars
        clean_by_key = {
            (e.t, e.src, e.dst): e.rtt for e in _measurements(clean_trace)
        }
        for event in _measurements(faulted):
            clean_rtt = clean_by_key[(event.t, event.src, event.dst)]
            if event.src in liars:
                assert event.rtt == pytest.approx(clean_rtt * 5.0)
            else:
                assert event.rtt == pytest.approx(clean_rtt)

    def test_spikes_multiply_a_fraction_of_honest_reports(self, clean_trace):
        spec = FaultSpec(spike_fraction=0.1, spike_multiplier=10.0, seed=2)
        faulted = apply_faults(clean_trace, spec)
        clean_rtts = [e.rtt for e in _measurements(clean_trace)]
        faulted_rtts = [e.rtt for e in _measurements(faulted)]
        spiked = sum(
            1
            for before, after in zip(clean_rtts, faulted_rtts)
            if after == pytest.approx(before * 10.0)
        )
        assert 0 < spiked <= int(len(clean_rtts) * 0.1) + 1

    def test_duplicates_add_measurements(self, clean_trace):
        spec = FaultSpec(duplicate_fraction=0.2, seed=2)
        faulted = apply_faults(clean_trace, spec)
        n_clean = len(_measurements(clean_trace))
        n_faulted = len(_measurements(faulted))
        assert n_faulted > n_clean
        assert n_faulted <= n_clean + int(n_clean * 0.2) + 1

    def test_flaps_add_leave_join_pairs(self, clean_trace):
        spec = FaultSpec(flap_count=3, seed=2)
        faulted = apply_faults(clean_trace, spec)
        clean_counts = clean_trace.counts()
        counts = faulted.counts()
        assert counts["leaves"] == clean_counts["leaves"] + 3
        assert counts["joins"] == clean_counts["joins"] + 3

    def test_skew_marks_trace_unordered(self, clean_trace):
        spec = FaultSpec(skew_fraction=0.3, max_skew_seconds=5.0, seed=2)
        faulted = apply_faults(clean_trace, spec)
        assert not faulted.ordered
        assert faulted.out_of_order_count > 0
        # Clean trace stays ordered.
        assert clean_trace.ordered
        assert clean_trace.out_of_order_count == 0

    def test_meta_records_the_spec(self, clean_trace):
        spec = FaultSpec(liar_fraction=0.1, seed=5)
        faulted = apply_faults(clean_trace, spec)
        assert faulted.meta["faults"]["liar_fraction"] == 0.1
        assert faulted.meta["faults"]["seed"] == 5

    def test_ground_truth_untouched(self, clean_trace):
        spec = FaultSpec(liar_fraction=0.5, spike_fraction=0.5, seed=2)
        faulted = apply_faults(clean_trace, spec)
        assert np.array_equal(
            faulted.ground_truth, clean_trace.ground_truth, equal_nan=True
        )


class TestSynthesizeIntegration:
    def test_synthesize_trace_applies_faults(self):
        spec = FaultSpec(liar_fraction=0.1, seed=1)
        faulted = synthesize_trace(n_nodes=24, seed=1, duration=20.0, faults=spec)
        assert "faults" in faulted.meta
        assert faulted.meta["fault_liars"]
