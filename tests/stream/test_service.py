"""Unit tests for the live streaming coordinate service."""

import numpy as np
import pytest

from repro.coords.online import OnlineVivaldiConfig
from repro.errors import StreamError
from repro.stream import (
    MeasurementEvent,
    NodeJoin,
    NodeLeave,
    StreamCoordinateService,
    StreamServiceConfig,
)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(alert_threshold=0.0),
            dict(alert_threshold=1.0),
            dict(severity_witnesses=0),
            dict(severity_alpha=0.0),
            dict(severity_alpha=1.5),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(StreamError):
            StreamServiceConfig(**kwargs)


class TestEventHandling:
    def test_apply_dispatches_by_event_type(self):
        service = StreamCoordinateService(rng=0)
        service.apply(NodeJoin(0.0, 1))
        service.apply(NodeJoin(0.0, 2))
        service.apply(MeasurementEvent(1.0, 1, 2, 20.0))
        service.apply(NodeLeave(2.0, 2))
        assert service.n_active == 1
        assert service.n_events == 4
        assert service.clock == 2.0

    def test_unknown_event_rejected(self):
        service = StreamCoordinateService(rng=0)
        with pytest.raises(StreamError, match="unknown stream event"):
            service.apply(("not", "an", "event"))

    def test_time_regression_rejected(self):
        service = StreamCoordinateService(rng=0)
        service.join(1, t=5.0)
        with pytest.raises(StreamError, match="time-ordered"):
            service.join(2, t=4.0)

    def test_double_join_rejected(self):
        service = StreamCoordinateService(rng=0)
        service.join(1)
        with pytest.raises(StreamError, match="joined twice"):
            service.join(1)

    def test_leave_of_inactive_rejected(self):
        service = StreamCoordinateService(rng=0)
        with pytest.raises(StreamError, match="not active"):
            service.leave(3)

    def test_measurement_on_inactive_node_rejected(self):
        service = StreamCoordinateService(rng=0)
        service.join(1)
        with pytest.raises(StreamError, match="inactive node 2"):
            service.observe(1, 2, 10.0)


class TestEdgeMemory:
    def test_observation_is_remembered(self):
        service = StreamCoordinateService(rng=0)
        service.join(1)
        service.join(2)
        service.observe(1, 2, 33.0, t=1.0)
        assert service.n_observed_edges == 1
        verdict = service.tiv_alert(2, 1)  # undirected: order must not matter
        assert verdict["observed"] == 33.0
        assert verdict["edge"] == (1, 2)

    def test_leave_drops_the_nodes_edges(self):
        service = StreamCoordinateService(rng=0)
        for node in (1, 2, 3):
            service.join(node)
        service.observe(1, 2, 10.0, t=1.0)
        service.observe(2, 3, 15.0, t=2.0)
        service.observe(1, 3, 20.0, t=3.0)
        assert service.n_observed_edges == 3
        service.leave(2, t=4.0)
        assert service.n_observed_edges == 1  # only (1, 3) survives
        with pytest.raises(StreamError, match="no observed measurement"):
            service.tiv_alert(1, 2)

    def test_alert_requires_an_observation(self):
        service = StreamCoordinateService(rng=0)
        service.join(1)
        service.join(2)
        with pytest.raises(StreamError, match="no observed measurement"):
            service.tiv_alert(1, 2)


class TestSeverity:
    def make_tiv_service(self):
        """A 3-node population with one blatant TIV on edge (0, 2).

        d(0,1) = d(1,2) = 5 but d(0,2) = 100: witness 1 offers a 10 ms
        detour, severity ratio 10.
        """
        service = StreamCoordinateService(rng=0)
        for node in (0, 1, 2):
            service.join(node)
        t = 1.0
        for _ in range(5):
            service.observe(0, 1, 5.0, t=t)
            service.observe(1, 2, 5.0, t=t + 0.1)
            service.observe(0, 2, 100.0, t=t + 0.2)
            t += 1.0
        return service

    def test_rolling_severity_converges_to_the_ratio(self):
        service = self.make_tiv_service()
        estimate = service.severity_estimate(0, 2)
        assert estimate == pytest.approx(10.0)

    def test_non_violating_edges_estimate_one(self):
        service = self.make_tiv_service()
        # Edge (0, 1) has detour 105 via witness 2 — no violation, so
        # every sample clips to 1.
        assert service.severity_estimate(0, 1) == pytest.approx(1.0)

    def test_worst_edges_ranks_the_tiv_first(self):
        service = self.make_tiv_service()
        worst = service.worst_edges(2)
        assert worst[0][0] == (0, 2)
        assert worst[0][1] > worst[1][1]

    def test_no_estimate_without_witnesses(self):
        service = StreamCoordinateService(rng=0)
        service.join(1)
        service.join(2)
        service.observe(1, 2, 10.0, t=1.0)
        assert service.severity_estimate(1, 2) is None

    def test_tiv_edge_alerts(self):
        # The embedding cannot place the TIV edge at 100 while its
        # endpoints sit 5 ms from the shared witness: the predicted
        # delay collapses and the predicted/observed ratio crosses the
        # alert threshold.
        service = self.make_tiv_service()
        verdict = service.tiv_alert(0, 2)
        assert verdict["ratio"] < 0.5
        assert verdict["alerted"]
        assert verdict["severity_estimate"] == pytest.approx(10.0)


class TestDroppedMeasurements:
    def test_unusable_rtts_are_counted_not_hidden(self):
        # Regression: rtt <= 0 (and non-finite) measurements were silently
        # ignored; the service must count every drop.
        service = StreamCoordinateService(rng=0)
        service.join(1)
        service.join(2)
        t = 1.0
        for rtt in (0.0, -5.0, float("nan"), float("inf")):
            service.observe(1, 2, rtt, t=t)
            t += 1.0
        assert service.dropped_measurements == 4
        assert service.n_observed_edges == 0  # nothing unusable was recorded
        service.observe(1, 2, 20.0, t=t)
        assert service.dropped_measurements == 4  # good ones don't count
        assert service.n_observed_edges == 1

    def test_dropped_measurements_still_advance_the_clock(self):
        service = StreamCoordinateService(rng=0)
        service.join(1)
        service.join(2)
        service.observe(1, 2, -1.0, t=7.0)
        assert service.clock == 7.0
        assert service.n_events == 3


class TestBatchQueries:
    def warmed(self):
        rng = np.random.default_rng(3)
        points = rng.uniform(0.0, 80.0, size=(12, 2))
        truth = np.sqrt(((points[:, None] - points[None, :]) ** 2).sum(-1)) + 1.0
        service = StreamCoordinateService(rng=1)
        for node in range(12):
            service.join(node)
        t = 1.0
        for _ in range(40):
            for src in range(12):
                dst = int(rng.integers(0, 11))
                dst += dst >= src
                service.observe(src, dst, float(truth[src, dst]), t=t)
                t += 0.001
        return service

    def test_batch_queries_delegate_to_the_embedding(self):
        service = self.warmed()
        nodes = service.active_nodes()
        assert service.closest_batch(nodes, k=2) == [
            service.closest(node, k=2) for node in nodes
        ]
        pairs = [(a, b) for a in nodes[:4] for b in nodes[:4]]
        values = service.distance_batch(pairs)
        for (a, b), got in zip(pairs, values):
            assert got == service.distance(a, b)
        active, matrix = service.distances_matrix(nodes[:3])
        assert active == nodes
        assert matrix.shape == (3, len(nodes))

    def test_tiv_alert_batch_matches_scalar_verdicts(self):
        service = self.warmed()
        edges = service.observed_edges()[:16]
        verdicts = service.tiv_alert_batch(edges)
        assert len(verdicts) == len(edges)
        for edge, got in zip(edges, verdicts):
            assert got == service.tiv_alert(*edge)

    def test_tiv_alert_batch_requires_observations_for_every_edge(self):
        service = self.warmed()
        good = service.observed_edges()[0]
        with pytest.raises(StreamError, match="no observed measurement"):
            service.tiv_alert_batch([good, (998, 999)])

    def test_observed_edges_sorted_and_undirected(self):
        service = StreamCoordinateService(rng=0)
        for node in (1, 2, 3):
            service.join(node)
        service.observe(3, 1, 9.0, t=1.0)
        service.observe(2, 1, 9.0, t=2.0)
        assert service.observed_edges() == [(1, 2), (1, 3)]


class TestQueries:
    def test_closest_and_distance_reflect_the_embedding(self):
        rng = np.random.default_rng(6)
        points = rng.uniform(0.0, 80.0, size=(10, 2))
        truth = np.sqrt(((points[:, None] - points[None, :]) ** 2).sum(-1))
        service = StreamCoordinateService(
            StreamServiceConfig(
                online=OnlineVivaldiConfig(use_height=False, rho=0.0)
            ),
            rng=1,
        )
        for node in range(10):
            service.join(node)
        t = 1.0
        for _ in range(100):
            for src in range(10):
                dst = int(rng.integers(0, 9))
                dst += dst >= src
                service.observe(src, dst, float(truth[src, dst]), t=t)
                t += 0.001
        node, predicted = service.closest(0, k=1)[0]
        assert predicted == pytest.approx(service.distance(0, node))
        # The embedding's nearest neighbour should be among the true
        # nearest few (exact rank-1 agreement is not guaranteed).
        true_rank = np.argsort(truth[0])[1:4]
        assert node in true_rank

    def test_staleness_summary(self):
        service = StreamCoordinateService(rng=0)
        service.join(1, t=0.0)
        service.join(2, t=0.0)
        service.observe(1, 2, 10.0, t=8.0)
        stats = service.staleness()
        assert stats["nodes"] == 2.0
        assert stats["max"] == pytest.approx(8.0)  # node 2 never updated
        assert stats["mean"] == pytest.approx(4.0)

    def test_empty_service_staleness(self):
        service = StreamCoordinateService(rng=0)
        stats = service.staleness()
        assert stats["nodes"] == 0.0
        assert np.isnan(stats["mean"])
