"""Stream-vs-batch equivalence and churn determinism (ISSUE 6).

The streaming service is a different *delivery* of the same algorithm,
not a different algorithm: replaying a churn-free trace through the
per-observation update (height and gravity disabled, so the update is
exactly the batch scalar rule) must converge to the same embedding
quality as the batched :class:`~repro.coords.vivaldi.VivaldiSystem` on
the same ground-truth matrix.  And with churn enabled, a replay is a
pure function of ``(trace, config, seed)``.
"""

import json

import numpy as np
import pytest

from repro.coords.online import OnlineVivaldiConfig
from repro.coords.vivaldi import embed_vivaldi
from repro.delayspace.matrix import DelayMatrix
from repro.stats.summary import relative_errors
from repro.stream import (
    StreamCoordinateService,
    StreamServiceConfig,
    replay_trace,
    synthesize_trace,
)

#: Scalar-rule service config: with height and gravity off the online
#: update matches the batch kernel's per-probe rule exactly.
SCALAR_CONFIG = StreamServiceConfig(
    online=OnlineVivaldiConfig(use_height=False, rho=0.0)
)


def stream_median_error(trace, seed) -> float:
    service = StreamCoordinateService(SCALAR_CONFIG, rng=seed)
    for event in trace.events:
        service.apply(event)
    snapshot = service.embedding.snapshot()
    coords = snapshot["coordinates"]
    diff = coords[:, None, :] - coords[None, :, :]
    predicted = np.sqrt((diff**2).sum(-1))
    rel = relative_errors(trace.ground_truth, predicted)
    return float(np.median(rel))


class TestStreamMatchesBatch:
    def test_no_churn_stream_converges_like_the_batch_system(self):
        """Mean-over-seeds converged error must be statistically
        indistinguishable between the two delivery mechanisms (same
        pattern and bounds as the batched/reference kernel equivalence
        in tests/coords/test_vivaldi.py)."""
        stream_errors, batch_errors = [], []
        for seed in range(3):
            trace = synthesize_trace(
                n_nodes=48, seed=seed, duration=100.0, churn=0.0
            )
            stream_errors.append(stream_median_error(trace, seed))
            batch = embed_vivaldi(
                DelayMatrix(trace.ground_truth), seconds=100, rng=seed
            )
            rel = relative_errors(trace.ground_truth, batch.predicted_matrix())
            batch_errors.append(float(np.median(rel)))
        stream_mean = float(np.mean(stream_errors))
        batch_mean = float(np.mean(batch_errors))
        assert stream_mean < 0.3
        assert batch_mean < 0.3
        assert abs(stream_mean - batch_mean) < 0.05

    def test_height_and_gravity_do_not_break_convergence(self):
        # The paper-faithful defaults (height on, rho gravity on) must
        # still reach a usable embedding; they just aren't bit-comparable
        # to the batch system.
        trace = synthesize_trace(n_nodes=48, seed=5, duration=100.0, churn=0.0)
        report = replay_trace(trace, window_seconds=20.0)
        assert report.totals["last_window_median_relative_error"] < 0.3
        assert report.totals["accuracy_improved"]


class TestChurnDeterminism:
    def test_churn_replay_is_a_pure_function_of_trace_and_seed(self):
        trace_a = synthesize_trace(n_nodes=32, seed=9, duration=40.0, churn=0.3)
        trace_b = synthesize_trace(n_nodes=32, seed=9, duration=40.0, churn=0.3)
        assert trace_a.events == trace_b.events
        report_a = replay_trace(trace_a, window_seconds=10.0, rng=2)
        report_b = replay_trace(trace_b, window_seconds=10.0, rng=2)
        assert json.dumps(report_a.as_dict()) == json.dumps(report_b.as_dict())

    def test_churn_recovery_restores_accuracy(self):
        """Nodes that leave and rejoin re-localise: the final window's
        error (everyone back, re-converged) must beat the first window's
        cold start despite the mid-trace disruption."""
        trace = synthesize_trace(n_nodes=32, seed=13, duration=60.0, churn=0.3)
        assert trace.counts()["leaves"] > 0
        report = replay_trace(trace, window_seconds=10.0)
        assert report.totals["final_active_nodes"] == 32
        assert report.totals["accuracy_improved"]
        assert (
            report.totals["last_window_median_relative_error"]
            < report.totals["first_window_median_relative_error"]
        )
