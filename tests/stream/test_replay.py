"""Unit tests for trace replay and the stream report."""

import json

import numpy as np
import pytest

from repro.errors import StreamError
from repro.stream import replay_trace, synthesize_trace
from repro.stream.events import MeasurementEvent, NodeJoin, Trace
from repro.stream.replay import STREAM_REPORT_SCHEMA


@pytest.fixture(scope="module")
def churny_report():
    trace = synthesize_trace(n_nodes=32, seed=11, duration=40.0, churn=0.25)
    return trace, replay_trace(trace, window_seconds=10.0)


class TestWindows:
    def test_window_grid_covers_the_trace(self, churny_report):
        trace, report = churny_report
        assert report.window_seconds == 10.0
        assert len(report.windows) == 4
        for index, window in enumerate(report.windows[:-1]):
            assert window.index == index
            assert window.t_end - window.t_start == pytest.approx(10.0)
        # The final window ends at the last event, not the next nominal
        # boundary — it may span less than a full window.
        last = report.windows[-1]
        assert last.t_end == trace.events[-1].t
        assert 0 < last.t_end - last.t_start <= 10.0
        assert sum(w.events for w in report.windows) == trace.n_events

    def test_final_window_clamped_to_the_last_event(self):
        # Regression: the trailing close_window(boundary) used to stamp the
        # final window with the next nominal boundary (here t_end=20.0),
        # overstating its time coverage by nearly a full window.
        events = [NodeJoin(0.0, 0), NodeJoin(0.0, 1)]
        t = 0.5
        while t < 12.0:
            events.append(MeasurementEvent(t, 0, 1, 25.0))
            events.append(MeasurementEvent(t + 0.1, 1, 0, 25.0))
            t += 1.0
        truth = np.full((2, 2), 25.0)
        np.fill_diagonal(truth, 0.0)
        trace = Trace(events, truth, {})
        report = replay_trace(trace, window_seconds=10.0)
        assert len(report.windows) == 2
        assert report.windows[0].t_end == 10.0
        assert report.windows[1].t_start == 10.0
        assert report.windows[1].t_end == trace.events[-1].t  # 11.6, not 20.0
        assert report.windows[1].t_end < 12.0

    def test_event_counts_split_by_kind(self, churny_report):
        trace, report = churny_report
        counts = trace.counts()
        assert sum(w.measurements for w in report.windows) == counts["measurements"]
        assert sum(w.joins for w in report.windows) == counts["joins"]
        assert sum(w.leaves for w in report.windows) == counts["leaves"]
        # Churn lands mid-trace by construction: the interior windows must
        # carry leaves, the first window only the initial joins.
        assert report.windows[0].joins == 32
        assert sum(w.leaves for w in report.windows[1:]) == counts["leaves"]

    def test_accuracy_improves_over_the_trace(self, churny_report):
        _, report = churny_report
        first, last = report.windows[0], report.windows[-1]
        assert last.median_relative_error < first.median_relative_error
        assert report.totals["accuracy_improved"] is True
        assert report.totals["first_window_median_relative_error"] == pytest.approx(
            first.median_relative_error
        )

    def test_staleness_tracked_per_window(self, churny_report):
        _, report = churny_report
        for window in report.windows:
            assert window.mean_staleness >= 0.0
            assert window.max_staleness >= window.mean_staleness


class TestQueriesInReport:
    def test_closest_queries_answered(self, churny_report):
        _, report = churny_report
        assert len(report.queries["closest"]) == 8
        for row in report.queries["closest"]:
            assert row["node"] != row["closest"]
            assert row["predicted"] > 0

    def test_tiv_alert_queries_cover_worst_edges(self, churny_report):
        _, report = churny_report
        alerts = report.queries["tiv_alerts"]
        assert 0 < len(alerts) <= 8
        severities = [row["severity_estimate"] for row in alerts]
        assert severities == sorted(severities, reverse=True)


class TestReportPayload:
    def test_as_dict_is_json_clean_and_tagged(self, churny_report):
        _, report = churny_report
        payload = report.as_dict()
        assert payload["schema"] == STREAM_REPORT_SCHEMA
        encoded = json.dumps(payload)
        assert json.loads(encoded)["totals"]["windows"] == 4

    def test_write_emits_the_payload(self, churny_report, tmp_path):
        _, report = churny_report
        path = tmp_path / "stream.json"
        report.write(path)
        on_disk = json.loads(path.read_text())
        assert on_disk["schema"] == STREAM_REPORT_SCHEMA
        assert len(on_disk["windows"]) == 4

    def test_trace_meta_carried_through(self, churny_report):
        trace, report = churny_report
        assert report.trace_meta == trace.meta

    def test_totals_surface_dropped_measurements(self, churny_report):
        # Synthetic traces only emit usable RTTs, so the counter reads 0 —
        # but the key must be present in every report.
        _, report = churny_report
        assert report.totals["dropped_measurements"] == 0

    def test_dropped_measurements_counted_in_totals(self):
        truth = np.full((2, 2), 25.0)
        np.fill_diagonal(truth, 0.0)
        events = [
            NodeJoin(0.0, 0),
            NodeJoin(0.0, 1),
            MeasurementEvent(0.5, 0, 1, 25.0),
            MeasurementEvent(1.5, 0, 1, -3.0),  # broken probe: dropped
            MeasurementEvent(2.5, 1, 0, 25.0),
        ]
        report = replay_trace(Trace(events, truth, {}), window_seconds=10.0)
        assert report.totals["dropped_measurements"] == 1


class TestReplayValidation:
    def test_empty_trace_rejected(self):
        truth = np.eye(3)
        trace = Trace([], truth, {})
        with pytest.raises(StreamError, match="empty trace"):
            replay_trace(trace)

    def test_nonpositive_window_rejected(self, churny_report):
        trace, _ = churny_report
        with pytest.raises(StreamError, match="window_seconds"):
            replay_trace(trace, window_seconds=0.0)

    def test_replay_is_deterministic(self):
        trace = synthesize_trace(n_nodes=16, seed=7, duration=15.0, churn=0.2)
        a = replay_trace(trace, window_seconds=5.0, rng=3)
        b = replay_trace(trace, window_seconds=5.0, rng=3)
        assert json.dumps(a.as_dict()) == json.dumps(b.as_dict())

    def test_service_seed_changes_the_outcome(self):
        trace = synthesize_trace(n_nodes=16, seed=7, duration=15.0, churn=0.2)
        a = replay_trace(trace, window_seconds=5.0, rng=3)
        b = replay_trace(trace, window_seconds=5.0, rng=4)
        assert json.dumps(a.as_dict()) != json.dumps(b.as_dict())


class TestWindowMetricsOnPartialPopulations:
    def test_edges_with_inactive_endpoints_are_skipped(self):
        # Node 2 never joins: windows must score only the live pairs and
        # stay finite.
        rng = np.random.default_rng(0)
        points = rng.uniform(0.0, 50.0, size=(3, 2))
        truth = np.sqrt(((points[:, None] - points[None, :]) ** 2).sum(-1))
        events = [NodeJoin(0.0, 0), NodeJoin(0.0, 1)]
        t = 0.5
        for _ in range(30):
            events.append(MeasurementEvent(t, 0, 1, float(truth[0, 1])))
            events.append(MeasurementEvent(t + 0.1, 1, 0, float(truth[0, 1])))
            t += 1.0
        trace = Trace(events, truth, {})
        report = replay_trace(trace, window_seconds=10.0)
        for window in report.windows:
            assert window.active_nodes == 2
            assert window.evaluated_edges == 1
            assert np.isfinite(window.median_relative_error)
