"""Tests for the Byzantine measurement defense (gate + quarantine ledger)."""

import numpy as np
import pytest

from repro.errors import StreamError
from repro.stream import (
    DefenseConfig,
    FaultSpec,
    MeasurementEvent,
    NodeJoin,
    NodeLeave,
    StreamCoordinateService,
    StreamServiceConfig,
    replay_trace,
    synthesize_trace,
)

#: A defense that arms early (after the embedding has converged a bit),
#: for unit-level gate tests.
FAST = DefenseConfig(warmup_observations=400, node_warmup_updates=5)


def _warm_service(n_nodes=8, rounds=800, defense=FAST, rng=0):
    """A service warmed with geometry-consistent (Euclidean) measurements."""
    points = np.random.default_rng(1).uniform(0.0, 50.0, size=(n_nodes, 2))
    delays = np.linalg.norm(points[:, None] - points[None, :], axis=-1) + 5.0
    service = StreamCoordinateService(
        config=StreamServiceConfig(defense=defense), rng=rng
    )
    for node in range(n_nodes):
        service.apply(NodeJoin(0.0, node))
    t = 1.0
    rand = np.random.default_rng(7)
    for _ in range(rounds):
        src, dst = rand.choice(n_nodes, size=2, replace=False)
        service.apply(
            MeasurementEvent(t, int(src), int(dst), float(delays[src, dst]))
        )
        t += 0.01
    return service, t


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(warmup_observations=-1),
            dict(node_warmup_updates=-1),
            dict(gate_multiplier=0.0),
            dict(gate_floor=0.0),
            dict(residual_alpha=0.0),
            dict(residual_alpha=1.5),
            dict(suspicion_alpha=0.0),
            dict(quarantine_threshold=0.0),
            dict(quarantine_threshold=1.5),
            dict(release_threshold=-0.1),
            dict(probation_interval=0),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(StreamError):
            DefenseConfig(**kwargs)

    def test_release_must_stay_below_quarantine_threshold(self):
        with pytest.raises(StreamError):
            DefenseConfig(quarantine_threshold=0.3, release_threshold=0.5)


class TestResidualGate:
    def test_consistent_traffic_quarantines_nobody(self):
        service, _ = _warm_service()
        # A young embedding occasionally mispredicts an honest edge, so a
        # minority of gate rejections is expected — but absolution on the
        # surrounding accepted traffic must keep everyone out of quarantine.
        assert service.rejected_measurements < 80  # of 800 measurements
        assert not service.quarantined_nodes()
        assert service.defense_stats()["ever_quarantined_nodes"] == 0

    def test_absurd_measurement_rejected_after_warmup(self):
        service, t = _warm_service()
        before = service.rejected_measurements
        service.apply(MeasurementEvent(t, 0, 1, 20_000.0))
        assert service.rejected_measurements == before + 1

    def test_gate_disarmed_during_warmup(self):
        defense = DefenseConfig(warmup_observations=10_000, node_warmup_updates=2)
        service, t = _warm_service(defense=defense)
        service.apply(MeasurementEvent(t, 0, 1, 20_000.0))
        assert service.rejected_measurements == 0

    def test_no_defense_accepts_everything(self):
        service = StreamCoordinateService(rng=0)
        service.apply(NodeJoin(0.0, 0))
        service.apply(NodeJoin(0.0, 1))
        service.apply(MeasurementEvent(1.0, 0, 1, 20_000.0))
        assert service.rejected_measurements == 0


class TestQuarantine:
    def test_repeat_offender_is_quarantined_and_counted(self):
        service, t = _warm_service()
        for i in range(40):
            service.apply(MeasurementEvent(t + i * 0.01, 0, 1 + (i % 4), 20_000.0))
        assert 0 in service.quarantined_nodes()
        stats = service.defense_stats()
        assert stats["quarantined_nodes"] >= 1
        assert stats["ever_quarantined_nodes"] >= 1
        assert stats["rejected_measurements"] > 0

    def test_quarantined_node_reports_are_dropped_without_gating(self):
        service, t = _warm_service()
        for i in range(40):
            service.apply(MeasurementEvent(t + i * 0.01, 0, 1 + (i % 4), 20_000.0))
        assert 0 in service.quarantined_nodes()
        drops_before = service.defense_stats()["quarantine_drops"]
        service.apply(MeasurementEvent(t + 1.0, 0, 1, 20.0))
        assert service.defense_stats()["quarantine_drops"] >= drops_before

    def test_ledger_survives_leave_and_rejoin(self):
        service, t = _warm_service()
        for i in range(40):
            service.apply(MeasurementEvent(t + i * 0.01, 0, 1 + (i % 4), 20_000.0))
        assert 0 in service.quarantined_nodes()
        service.apply(NodeLeave(t + 1.0, 0))
        service.apply(NodeJoin(t + 2.0, 0))
        assert 0 in service.quarantined_nodes()
        assert service.suspicion_of(0) > 0

    def test_suspicion_decays_on_accepted_traffic(self):
        service, t = _warm_service()
        # Honest follow-up reports must match the fixture's geometry, or
        # the gate (rightly) keeps rejecting them instead of absolving.
        points = np.random.default_rng(1).uniform(0.0, 50.0, size=(8, 2))
        delays = np.linalg.norm(points[:, None] - points[None, :], axis=-1) + 5.0
        service.apply(MeasurementEvent(t, 0, 1, 20_000.0))
        high = service.suspicion_of(0)
        assert high > 0
        for i in range(20):
            dst = 1 + (i % 4)
            service.apply(
                MeasurementEvent(t + 0.01 + i * 0.01, 0, dst, float(delays[0, dst]))
            )
        assert service.suspicion_of(0) < high


class TestLateEvents:
    def test_late_measurement_dropped_when_defense_armed(self):
        service, t = _warm_service()
        events_before = service.n_events
        service.apply(MeasurementEvent(t - 5.0, 0, 1, 20.0))
        assert service.late_dropped_events == 1
        assert service.n_events == events_before + 1  # still counted as an event

    def test_late_measurement_rejected_without_defense(self):
        service = StreamCoordinateService(rng=0)
        service.apply(NodeJoin(1.0, 0))
        with pytest.raises(StreamError, match="time"):
            service.apply(NodeJoin(0.5, 1))


class TestEndToEnd:
    def test_defense_quarantines_injected_liars(self):
        trace = synthesize_trace(
            n_nodes=48,
            seed=3,
            duration=60.0,
            faults=FaultSpec(liar_fraction=0.1, seed=3),
        )
        liars = set(trace.meta["fault_liars"])
        defended = replay_trace(
            trace, config=StreamServiceConfig(defense=DefenseConfig())
        )
        quarantined = set(defended.defense["ever_quarantined"])
        assert quarantined  # the defense engaged
        assert quarantined <= liars  # zero false positives on this seed
        assert len(quarantined & liars) >= len(liars) // 2
        assert defended.totals["rejected_measurements"] > 0

    def test_defense_report_totals_surface(self):
        trace = synthesize_trace(n_nodes=24, seed=0, duration=20.0)
        report = replay_trace(
            trace, config=StreamServiceConfig(defense=DefenseConfig())
        )
        for key in (
            "rejected_measurements",
            "quarantined_nodes",
            "ever_quarantined_nodes",
            "late_dropped_events",
        ):
            assert key in report.totals
        assert "gate_rejected" in report.defense
