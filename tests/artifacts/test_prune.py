"""Tests for ``repro cache prune`` (repro.artifacts.prune)."""

import json

import numpy as np

from repro.artifacts import ArtifactKey, prune_cache
from repro.experiments.cache import ArtifactCache, stable_key
from repro.experiments.config import ExperimentConfig
from repro.experiments.context import ExperimentContext

TINY = ExperimentConfig(n_nodes=24, vivaldi_seconds=2)


def _populate(cache_dir):
    cache = ArtifactCache(cache_dir)
    context = ExperimentContext(TINY, cache=cache)
    _ = context.severity
    _ = context.vivaldi
    return cache


class TestLiveEntriesSurvive:
    def test_live_cache_is_untouched(self, tmp_path):
        cache_dir = tmp_path / "cache"
        _populate(cache_dir)
        report = prune_cache(cache_dir)
        assert report.pruned == []
        assert report.kept >= 3
        # Everything still hits afterwards.
        counting = ArtifactCache(cache_dir)
        fresh = ExperimentContext(TINY, cache=counting)
        _ = fresh.severity
        _ = fresh.vivaldi
        assert counting.stats.misses == 0
        assert counting.stats.hits >= 3

    def test_missing_root_is_a_noop(self, tmp_path):
        report = prune_cache(tmp_path / "nope")
        assert report.scanned == 0


class TestStaleEraEviction:
    def test_pre_kernel_era_entry_is_pruned(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache = ArtifactCache(cache_dir)
        # A vivaldi entry written before the kernel switch existed: its
        # params lack the "kernel" key every live entry now carries.
        old_params = {"preset": "ds2_like", "n_nodes": 24, "seed": 0, "vivaldi_seconds": 2}
        cache.store(
            "vivaldi",
            old_params,
            {"coordinates": np.zeros((24, 3)), "errors": np.ones(24)},
            meta={"simulation_time": 2.0},
        )
        report = prune_cache(cache_dir)
        assert [entry.reason for entry in report.pruned] == [
            "pre-'kernel'-era entry (parameter absent)"
        ]
        assert not list((cache_dir / "vivaldi").iterdir())

    def test_retired_kernel_value_is_pruned(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache = ArtifactCache(cache_dir)
        params = {"preset": "ds2_like", "n_nodes": 24, "seed": 0, "kernel": "turbo"}
        cache.store("ides", params, {"outgoing": np.zeros((24, 4)), "incoming": np.zeros((24, 4))})
        report = prune_cache(cache_dir)
        assert len(report.pruned) == 1
        assert "retired 'kernel' value" in report.pruned[0].reason

    def test_retired_schema_address_is_pruned(self, tmp_path):
        # An entry whose stored params no longer hash to its file name was
        # written under a different CACHE_SCHEMA tag.
        cache_dir = tmp_path / "cache" / "dataset"
        cache_dir.mkdir(parents=True)
        params = {"preset": "ds2_like", "n_nodes": 24, "seed": 0}
        stale_name = "0" * 32
        assert stable_key("dataset", params) != stale_name
        (cache_dir / f"{stale_name}.json").write_text(
            json.dumps({"kind": "dataset", "params": params, "meta": {}}),
            encoding="utf-8",
        )
        (cache_dir / f"{stale_name}.npz").write_bytes(b"whatever")
        report = prune_cache(cache_dir.parent)
        assert len(report.pruned) == 1
        assert "retired cache schema" in report.pruned[0].reason

    def test_unknown_kind_orphans_and_garbage_are_pruned(self, tmp_path):
        cache_dir = tmp_path / "cache"
        _populate(cache_dir)
        (cache_dir / "oldkind").mkdir()
        (cache_dir / "oldkind" / "x.json").write_text("{}", encoding="utf-8")
        (cache_dir / "oldkind" / "x.npz").write_bytes(b"")
        (cache_dir / "dataset" / "orphan.npz").write_bytes(b"data")
        (cache_dir / "severity" / "bad.json").write_text("{not json", encoding="utf-8")
        (cache_dir / "severity" / "bad.npz").write_bytes(b"data")
        report = prune_cache(cache_dir)
        reasons = sorted(entry.reason for entry in report.pruned)
        assert len(report.pruned) == 3
        assert any("no registered artifact node" in reason for reason in reasons)
        assert any("orphaned archive" in reason for reason in reasons)
        assert any("unreadable or malformed" in reason for reason in reasons)
        # The live entries survived.
        counting = ArtifactCache(cache_dir)
        context = ExperimentContext(TINY, cache=counting)
        _ = context.severity
        assert counting.stats.misses == 0


class TestDryRun:
    def test_dry_run_reports_without_deleting(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache = ArtifactCache(cache_dir)
        params = {"preset": "ds2_like", "n_nodes": 24, "seed": 0}
        cache.store("vivaldi", params, {"coordinates": np.zeros((24, 3))})
        before = sorted(p.name for p in (cache_dir / "vivaldi").iterdir())
        report = prune_cache(cache_dir, dry_run=True)
        assert len(report.pruned) == 1
        assert report.dry_run
        assert sorted(p.name for p in (cache_dir / "vivaldi").iterdir()) == before


class TestReportShape:
    def test_as_dict(self, tmp_path):
        cache_dir = tmp_path / "cache"
        _populate(cache_dir)
        payload = prune_cache(cache_dir).as_dict()
        assert payload["scanned"] == payload["kept"] + payload["pruned"]
        assert payload["entries"] == []
        assert not payload["dry_run"]


class TestEraParamsDeclarations:
    def test_kernel_carrying_nodes_declare_eras(self):
        from repro.artifacts import get_node

        for name in ("vivaldi", "alert", "ides"):
            assert "kernel" in get_node(name).era_params, name
        assert "coords_kernel" in get_node("lat").era_params

    def test_artifact_key_labels(self):
        assert ArtifactKey("vivaldi").label == "vivaldi"
        assert ArtifactKey("dataset", ("ds2_like", 48)).label == "dataset[ds2_like,48]"
