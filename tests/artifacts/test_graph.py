"""Tests for artifact-graph resolution (repro.artifacts)."""

import dataclasses

import pytest

from repro.artifacts import (
    ArtifactGraph,
    ArtifactKey,
    ResolvedArtifact,
    graph_status,
    resolve_plan,
)
from repro.errors import ExperimentError
from repro.experiments.cache import stable_key
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import experiment_needs, list_experiments

TINY = ExperimentConfig(n_nodes=48, vivaldi_seconds=8, selection_runs=1, max_clients=16)


class TestResolution:
    @pytest.mark.parametrize("experiment_id", sorted(list_experiments()))
    def test_every_registered_figure_resolves(self, experiment_id):
        # The satellite contract behind deleting the "warm everything"
        # fallback: every figure must resolve from its declaration alone.
        plan = resolve_plan(TINY, [experiment_id])
        closure = plan.figure_needs[experiment_id]
        assert closure <= set(plan.graph.topological_order())
        if experiment_needs(experiment_id):
            assert closure, f"{experiment_id} declares needs but resolved to nothing"

    def test_full_suite_plan_is_closed_and_topological(self):
        plan = resolve_plan(TINY)
        order = plan.graph.topological_order()
        seen = set()
        for key in order:
            assert set(plan.graph[key].deps) <= seen, key.label
            seen.add(key)
        # Dependency closure: every dep of every artifact is in the graph.
        for artifact in plan.graph:
            for dep in artifact.deps:
                assert dep in plan.graph

    def test_waves_respect_dependencies(self):
        plan = resolve_plan(TINY)
        level = {}
        for index, wave in enumerate(plan.graph.waves()):
            for key in wave:
                level[key] = index
        for artifact in plan.graph:
            for dep in artifact.deps:
                assert level[dep] < level[artifact.key]

    def test_embedding_chain_is_declared(self):
        plan = resolve_plan(TINY, ["fig19"])
        graph = plan.graph
        main = ArtifactKey("dataset", (TINY.dataset, TINY.n_nodes))
        assert main in graph
        assert main in graph[ArtifactKey("vivaldi")].deps
        assert ArtifactKey("vivaldi") in graph[ArtifactKey("alert")].deps

    def test_independent_embeddings_share_a_wave(self):
        # vivaldi and ides both depend only on the dataset: the scheduler
        # may build them concurrently, which the wave structure exposes.
        plan = resolve_plan(TINY, ["fig15", "fig16"])
        waves = plan.graph.waves()
        wave_of = {key: i for i, wave in enumerate(waves) for key in wave}
        assert wave_of[ArtifactKey("vivaldi")] == wave_of[ArtifactKey("ides")]
        assert wave_of[ArtifactKey("lat")] > wave_of[ArtifactKey("vivaldi")]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            resolve_plan(TINY, ["fig99"])


class TestAddressCompatibility:
    """The PR-4 cache layout is a contract: addresses must not move."""

    def test_dataset_address_matches_legacy_params(self):
        plan = resolve_plan(TINY, ["fig03"])
        artifact = plan.graph[ArtifactKey("dataset", (TINY.dataset, TINY.n_nodes))]
        legacy = {"preset": TINY.dataset, "n_nodes": TINY.n_nodes, "seed": TINY.seed}
        assert artifact.params == legacy
        assert artifact.address == stable_key("dataset", legacy)

    def test_embedding_addresses_match_legacy_params(self):
        plan = resolve_plan(TINY, ["fig15", "fig16", "fig19"])
        legacy_embedding = {
            "preset": TINY.dataset,
            "n_nodes": TINY.n_nodes,
            "seed": TINY.seed,
            "vivaldi_seconds": TINY.vivaldi_seconds,
            "kernel": TINY.vivaldi_kernel,
        }
        assert plan.graph[ArtifactKey("vivaldi")].address == stable_key(
            "vivaldi", legacy_embedding
        )
        assert plan.graph[ArtifactKey("alert")].address == stable_key(
            "alert", legacy_embedding
        )
        legacy_ides = {
            "preset": TINY.dataset,
            "n_nodes": TINY.n_nodes,
            "seed": TINY.seed,
            "kernel": TINY.coords_kernel,
        }
        assert plan.graph[ArtifactKey("ides")].address == stable_key("ides", legacy_ides)
        legacy_lat = dict(legacy_embedding, coords_kernel=TINY.coords_kernel)
        assert plan.graph[ArtifactKey("lat")].address == stable_key("lat", legacy_lat)

    def test_kind_layout_unchanged(self):
        plan = resolve_plan(TINY)
        kinds = {artifact.kind for artifact in plan.graph}
        assert kinds == {
            "dataset",
            "clusters",
            "severity",
            "shortest_path",
            "vivaldi",
            "alert",
            "ides",
            "lat",
        }

    def test_deprecated_kernel_kwargs_share_addresses_with_kernels_mapping(self):
        """A config built through the retired kwargs must address every
        artefact byte-identically to the equivalent ``kernels`` mapping
        (the PR 6 deprecation shim may not invalidate warm caches)."""
        from repro.experiments.config import COORDS_SYSTEMS

        with pytest.warns(DeprecationWarning):
            legacy = dataclasses.replace(
                TINY, vivaldi_kernel="reference", coords_kernel="reference"
            )
        modern = dataclasses.replace(
            TINY,
            kernels={"vivaldi": "reference", **{s: "reference" for s in COORDS_SYSTEMS}},
        )
        legacy_plan = resolve_plan(legacy, ["fig15", "fig16", "fig19"])
        modern_plan = resolve_plan(modern, ["fig15", "fig16", "fig19"])
        assert {a.key: a.address for a in legacy_plan.graph} == {
            a.key: a.address for a in modern_plan.graph
        }

    def test_baseline_scenario_shares_addresses_with_plain(self):
        plain = resolve_plan(TINY)
        baseline = resolve_plan(dataclasses.replace(TINY, scenario="baseline"))
        assert {a.address for a in plain.graph} == {a.address for a in baseline.graph}

    def test_content_scenario_moves_every_address(self):
        plain = resolve_plan(TINY)
        heavy = resolve_plan(dataclasses.replace(TINY, scenario="heavy_tiv"))
        assert not ({a.address for a in plain.graph} & {a.address for a in heavy.graph})


class TestGraphStructure:
    def test_cycle_detection(self):
        a = ArtifactKey("vivaldi")
        b = ArtifactKey("alert")
        artifacts = {
            a: ResolvedArtifact(a, "vivaldi", {}, "addr-a", deps=(b,)),
            b: ResolvedArtifact(b, "alert", {}, "addr-b", deps=(a,)),
        }
        with pytest.raises(ExperimentError, match="cycle"):
            ArtifactGraph(artifacts)

    def test_unresolved_dependency_detected(self):
        a = ArtifactKey("alert")
        artifacts = {
            a: ResolvedArtifact(a, "alert", {}, "addr-a", deps=(ArtifactKey("vivaldi"),))
        }
        with pytest.raises(ExperimentError, match="unresolved"):
            ArtifactGraph(artifacts)

    def test_closure(self):
        plan = resolve_plan(TINY, ["fig19"])
        closure = plan.graph.closure([ArtifactKey("alert")])
        assert ArtifactKey("vivaldi") in closure
        assert ArtifactKey("dataset", (TINY.dataset, TINY.n_nodes)) in closure

    def test_graph_status_rows_cover_graph(self, tmp_path):
        from repro.experiments.cache import ArtifactCache

        plan = resolve_plan(TINY, ["fig03"])
        rows = graph_status(plan.graph, ArtifactCache(tmp_path / "empty"))
        assert len(rows) == len(plan.graph)
        assert all(row["cache"] == "miss" for row in rows)
        uncached = graph_status(plan.graph)
        assert all(row["cache"] == "unknown" for row in uncached)


class TestRegistryDeclarations:
    def test_unknown_requirement_token_rejected_at_registration(self):
        from repro.experiments import registry

        def _runner(config=None, *, context=None, **kwargs):
            raise AssertionError("never runs")

        with pytest.raises(ExperimentError, match="unknown artifact requirement"):
            registry.register_experiment("fig99_test", _runner, needs=("warp_drive",))
        assert "fig99_test" not in registry.list_experiments()

    def test_duplicate_registration_rejected(self):
        from repro.experiments import registry

        def _runner(config=None, *, context=None, **kwargs):
            raise AssertionError("never runs")

        with pytest.raises(ExperimentError, match="already registered"):
            registry.register_experiment("fig03", _runner, needs=())

    def test_needs_is_mandatory(self):
        from repro.experiments import registry

        with pytest.raises(TypeError):
            registry.register_experiment("fig99_test", lambda **kw: None)

    def test_every_declaration_uses_known_tokens(self):
        from repro.artifacts import REQUIREMENTS

        for experiment_id in list_experiments():
            assert experiment_needs(experiment_id) <= REQUIREMENTS
