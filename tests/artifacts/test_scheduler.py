"""DAG-scheduler contracts: compute-exactly-once, dedup, failure cascade,
and concurrent cache-write safety."""

import dataclasses
import json
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.cache import ArtifactCache
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import run_experiments
from repro.scenarios.runner import run_scenario_matrix
from repro.scenarios.spec import Scenario

TINY = ExperimentConfig(
    n_nodes=48,
    vivaldi_seconds=8,
    selection_runs=1,
    max_clients=16,
    meridian_small_count=10,
)


def _computes_by_address(report_dict) -> dict[str, int]:
    counts: dict[str, int] = {}
    for row in report_dict["artifacts"]:
        counts[row["address"]] = counts.get(row["address"], 0) + row["computes"]
    return counts


class TestComputeExactlyOnce:
    def test_parallel_cold_run_computes_each_artifact_once(self, tmp_path):
        # fig15/fig16/fig19 all share the dataset, and fig16/fig19 both
        # need the Vivaldi embedding: one compute each, however many
        # figures (and dependent artifact tasks) consume them.
        outcome = run_experiments(
            TINY,
            only=["fig15", "fig16", "fig19", "fig03"],
            jobs=2,
            cache_dir=tmp_path / "cache",
        )
        report = outcome.report.as_dict()
        counts = _computes_by_address(report)
        assert counts, "parallel cold run reported no artifact records"
        assert all(count == 1 for count in counts.values()), counts
        # The shared dataset was rehydrated by its dependents (zero-copy
        # shm attach, or disk restore with the tier off), never recomputed.
        dataset_rows = [r for r in report["artifacts"] if r["node"] == "dataset"]
        assert any(row["restores"] + row["attaches"] > 0 for row in dataset_rows)

    def test_sequential_full_sweep_computes_each_artifact_once(self, tmp_path):
        outcome = run_experiments(TINY, jobs=1, cache_dir=tmp_path / "cache")
        counts = _computes_by_address(outcome.report.as_dict())
        assert counts
        assert all(count == 1 for count in counts.values()), counts


class TestCrossScenarioDedup:
    @pytest.fixture
    def replicated_baseline(self, monkeypatch):
        # Two library scenarios whose content knobs are identical resolve
        # every artifact to the same cache address — the realistic shape
        # of replicated / renamed scenarios in a matrix sweep.  The
        # monkeypatched library reaches fork-started pool workers too.
        from repro.scenarios import library

        copy = Scenario("baseline_copy", description="replication of baseline")
        monkeypatch.setitem(library._BY_NAME, "baseline_copy", copy)
        return ("baseline", "baseline_copy")

    def test_shared_frontier_computes_cross_scenario_artifacts_once(
        self, tmp_path, replicated_baseline
    ):
        outcome = run_scenario_matrix(
            TINY,
            scenarios=list(replicated_baseline),
            only=["fig03", "fig19"],
            jobs=2,
            cache_dir=tmp_path / "cache",
        )
        # Both scenarios resolve to identical addresses...
        per_scenario = {
            record.scenario.name: record.report.as_dict()
            for record in outcome.report.records
        }
        counts: dict[str, int] = {}
        for report in per_scenario.values():
            for address, count in _computes_by_address(report).items():
                counts[address] = counts.get(address, 0) + count
        assert counts, "matrix run reported no artifact records"
        # ...and each shared artifact was computed exactly once across the
        # whole matrix (the single shared frontier dedupes by address).
        assert all(count == 1 for count in counts.values()), counts
        # The dedup was real: the copy scenario owned no artifact tasks
        # but its figures still ran warm off the shared entries.
        assert per_scenario["baseline_copy"]["shared_precompute"]["cache"]["stores"] == 0
        assert per_scenario["baseline_copy"]["artifacts"] == []
        assert all(
            row["status"] == "ok" for row in per_scenario["baseline_copy"]["experiments"]
        )

    def test_sequential_matrix_also_computes_once_via_cache(
        self, tmp_path, replicated_baseline
    ):
        outcome = run_scenario_matrix(
            TINY,
            scenarios=list(replicated_baseline),
            only=["fig03"],
            jobs=1,
            cache_dir=tmp_path / "cache",
        )
        by_name = {r.scenario.name: r.report for r in outcome.report.records}
        assert by_name["baseline"].total_cache().stores > 0
        assert by_name["baseline_copy"].total_cache().stores == 0
        assert by_name["baseline_copy"].total_cache().misses == 0


class TestFailureCascade:
    def test_failed_artifact_fails_dependents_but_not_independents(
        self, tmp_path, monkeypatch
    ):
        import repro.artifacts.nodes as nodes

        def _boom(ctx, instance):
            raise RuntimeError("embedding exploded")

        monkeypatch.setitem(
            nodes._NODES,
            "vivaldi",
            dataclasses.replace(nodes._NODES["vivaldi"], compute=_boom),
        )
        report_path = tmp_path / "report.json"
        with pytest.raises(ExperimentError, match="embedding exploded"):
            run_experiments(
                TINY,
                only=["fig03", "fig19"],
                jobs=2,
                cache_dir=tmp_path / "cache",
                report_path=report_path,
            )
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        by_id = {row["id"]: row for row in payload["experiments"]}
        # fig03 never touches the embedding: it completed.
        assert by_id["fig03"]["status"] == "ok"
        # fig19 needs vivaldi (and alert, which cascades): recorded error.
        assert by_id["fig19"]["status"] == "error"
        assert "vivaldi" in by_id["fig19"]["error"]
        shared = payload["shared_precompute"]
        assert shared["status"] == "error"
        assert "embedding exploded" in shared["error"]
        # The alert artifact was cascaded, not attempted.
        assert "alert" in shared["error"]


    def test_matrix_exceptions_attributed_per_scenario(self, tmp_path, monkeypatch):
        # A broken scenario must not leak its exception into a healthy
        # scenario's outcome (each outcome chains a cause that actually
        # affected it).
        import repro.artifacts.nodes as nodes
        from repro.scenarios.library import get_scenario
        from repro.scenarios.runner import _run_matrix_parallel

        real_compute = nodes._NODES["vivaldi"].compute

        def _boom_under_tiv_free(ctx, instance):
            if ctx.scenario is not None and ctx.scenario.name == "tiv_free":
                raise RuntimeError("tiv_free generator exploded")
            return real_compute(ctx, instance)

        monkeypatch.setitem(
            nodes._NODES,
            "vivaldi",
            dataclasses.replace(nodes._NODES["vivaldi"], compute=_boom_under_tiv_free),
        )
        outcomes = _run_matrix_parallel(
            TINY,
            [get_scenario("baseline"), get_scenario("tiv_free")],
            ["fig03", "fig19"],
            2,
            tmp_path / "cache",
            None,
        )
        assert outcomes["baseline"].failures == {}
        assert outcomes["baseline"].first_exception is None
        assert "fig19" in outcomes["tiv_free"].failures
        assert isinstance(outcomes["tiv_free"].first_exception, RuntimeError)
        assert "tiv_free generator exploded" in str(
            outcomes["tiv_free"].first_exception
        )


def _store_repeatedly(cache_dir: str, worker_seed: int, rounds: int) -> int:
    """Store the same artifact address ``rounds`` times (race fodder)."""
    cache = ArtifactCache(cache_dir)
    params = {"preset": "race", "n_nodes": 16, "seed": 0}
    arrays = {
        "delays": np.full((16, 16), float(worker_seed)),
        "clusters": np.full(16, worker_seed),
    }
    for _ in range(rounds):
        cache.store("dataset", params, arrays, meta={"labels": ["x"] * 16})
    return rounds


class TestConcurrentCacheWrites:
    def test_racing_stores_never_corrupt_the_entry(self, tmp_path):
        # Two pool workers hammer the same artifact address while the
        # parent keeps loading it: every load must observe a complete,
        # self-consistent .npz+JSON pair from one writer or the other —
        # the atomic temp-file + os.replace contract.
        cache_dir = str(tmp_path / "cache")
        params = {"preset": "race", "n_nodes": 16, "seed": 0}
        reader = ArtifactCache(cache_dir)
        observed = 0
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [
                pool.submit(_store_repeatedly, cache_dir, worker_seed, 25)
                for worker_seed in (1, 2)
            ]
            while not all(future.done() for future in futures):
                entry = reader.load("dataset", params)
                if entry is None:
                    continue
                observed += 1
                value = entry.arrays["delays"][0, 0]
                assert value in (1.0, 2.0)
                assert np.all(entry.arrays["delays"] == value)
                assert np.all(entry.arrays["clusters"] == int(value))
                assert entry.meta["labels"] == ["x"] * 16
            assert all(future.result() == 25 for future in futures)
        # The final state is a clean, loadable entry.
        final = ArtifactCache(cache_dir).load("dataset", params)
        assert final is not None
        assert observed > 0

    def test_scheduler_never_submits_one_address_twice(self, tmp_path):
        # Deduplication by address is what guarantees "exactly one
        # compute" even when many consumers race for the same artifact:
        # the engine's frontier submits one task per address, full stop.
        from repro.artifacts import resolve_plan
        from repro.experiments.engine import plan_artifact_tasks

        plan = resolve_plan(TINY, ["fig15", "fig16", "fig17", "fig19"])
        tasks = plan_artifact_tasks(plan, tag="")
        addresses = [task.address for task in tasks.values()]
        assert len(addresses) == len(set(addresses))
        # Every artifact of the plan maps onto exactly one task address.
        assert {plan.graph[key].address for key in plan.graph.topological_order()} == set(
            addresses
        )
