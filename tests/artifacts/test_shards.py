"""Tests of the out-of-core artifact tier (repro.artifacts.shards).

The headline contracts:

* the stitched sharded severity/shortest artifacts are bit-for-bit equal
  to the dense path below the threshold (and the dense path's addresses
  never move — warm unsharded caches keep hitting);
* shard entries round-trip through the raw ``.npy`` cache layout and come
  back memory-mapped;
* orphaned shard files are pruned;
* the landmark shortest-path approximation stays an upper bound.
"""

import numpy as np
import pytest

import repro.artifacts.shards as shards_mod
from repro.artifacts import (
    ArtifactKey,
    ShardPart,
    StitchedMatrix,
    prune_cache,
    shard_count,
    shard_slices,
    stitch_parts,
)
from repro.budget import auto_chunk_size, budget_bytes, peak_rss_mb
from repro.errors import ConfigError
from repro.experiments.cache import ArtifactCache
from repro.experiments.config import ExperimentConfig
from repro.experiments.context import ExperimentContext


@pytest.fixture
def sharded(monkeypatch):
    """Force the shard tier on at harness scale."""
    monkeypatch.setattr(shards_mod, "SHARD_NODE_THRESHOLD", 64)


class TestBudget:
    def test_default_budget(self):
        assert budget_bytes(None) == 2048 * 1024 * 1024
        assert budget_bytes(256) == 256 * 1024 * 1024

    def test_budget_floor(self):
        with pytest.raises(ValueError):
            budget_bytes(8)

    def test_auto_chunk_single_pass_at_harness_scale(self):
        # The default budget must keep every harness-scale severity run a
        # single chunk, i.e. bit-identical to the pre-budget code path.
        for n in (64, 240, 400, 2000):
            assert auto_chunk_size(n) == n

    def test_auto_chunk_shrinks_under_tight_budget(self):
        chunk = auto_chunk_size(4000, memory_budget_mb=64)
        assert 64 <= chunk < 4000

    def test_peak_rss_positive(self):
        assert peak_rss_mb() > 0


class TestShardPlan:
    def test_below_threshold_never_shards(self):
        assert shard_count(400) == 1
        assert shard_count(1999) == 1

    def test_at_threshold_shards(self):
        assert shard_count(2000) >= 2

    def test_budget_drives_count(self):
        assert shard_count(5000, memory_budget_mb=64) > shard_count(
            5000, memory_budget_mb=2048
        )

    def test_slices_partition(self):
        slices = shard_slices(103, 4)
        assert slices[0][0] == 0
        assert slices[-1][1] == 103
        for (_, stop), (start, _) in zip(slices, slices[1:]):
            assert stop == start
        sizes = [stop - start for start, stop in slices]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_plans_rejected(self):
        with pytest.raises(ValueError):
            shard_slices(4, 5)
        with pytest.raises(ValueError):
            shard_count(0)


class TestStitchedMatrix:
    def _stitched(self, n=30, cols=30, blocks=3, seed=0):
        rng = np.random.default_rng(seed)
        dense = rng.normal(size=(n, cols))
        splits = np.array_split(dense, blocks, axis=0)
        return dense, StitchedMatrix(splits)

    def test_dense_roundtrip(self):
        dense, view = self._stitched()
        assert view.shape == dense.shape
        assert np.array_equal(np.asarray(view), dense)

    def test_row_indexing(self):
        dense, view = self._stitched()
        assert np.array_equal(view[0], dense[0])
        assert np.array_equal(view[-1], dense[-1])
        assert np.array_equal(view[4:17], dense[4:17])
        assert np.array_equal(view[::3], dense[::3])

    def test_fancy_rows(self):
        dense, view = self._stitched()
        idx = np.array([29, 0, 11, 11])
        assert np.array_equal(view[idx], dense[idx])
        mask = np.zeros(30, dtype=bool)
        mask[[2, 9, 25]] = True
        assert np.array_equal(view[mask], dense[mask])

    def test_pair_indexing(self):
        dense, view = self._stitched()
        iu = np.triu_indices(30, k=1)
        assert np.array_equal(view[iu], dense[iu])
        assert view[3, 7] == dense[3, 7]
        assert np.array_equal(view[5:20, 4], dense[5:20, 4])
        assert np.array_equal(view[np.array([1, 28]), 2:5], dense[np.array([1, 28]), 2:5])

    def test_out_of_range(self):
        _, view = self._stitched()
        with pytest.raises(IndexError):
            view[30]
        with pytest.raises(IndexError):
            view[np.array([0, 31]), np.array([0, 0])]

    def test_contiguity_enforced(self):
        part = ShardPart({"x": np.zeros((3, 5))}, {"start": 4, "stop": 7})
        with pytest.raises(ValueError):
            stitch_parts([part], "x")


class TestRawCacheLayout:
    def test_store_load_roundtrip_memmaps(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        arrays = {"severity": np.arange(12.0).reshape(3, 4), "counts": np.ones((3, 4))}
        cache.store_raw("severity_shard", {"a": 1}, arrays, meta={"start": 0, "stop": 3})
        entry = cache.load_raw("severity_shard", {"a": 1})
        assert entry is not None
        assert isinstance(entry.arrays["severity"], np.memmap)
        assert np.array_equal(entry.arrays["severity"], arrays["severity"])
        assert entry.meta["start"] == 0
        assert cache.contains("severity_shard", {"a": 1})

    def test_corrupt_raw_entry_evicted(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        cache.store_raw("severity_shard", {"a": 2}, {"x": np.ones(3)}, meta={})
        [npy] = list((tmp_path / "cache" / "severity_shard").glob("*__x.npy"))
        npy.write_bytes(b"garbage")
        assert cache.load_raw("severity_shard", {"a": 2}) is None
        assert not cache.contains("severity_shard", {"a": 2})

    def test_missing_raw_file_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        cache.store_raw("severity_shard", {"a": 3}, {"x": np.ones(3)}, meta={})
        [npy] = list((tmp_path / "cache" / "severity_shard").glob("*__x.npy"))
        npy.unlink()
        assert cache.load_raw("severity_shard", {"a": 3}) is None


class TestShardedArtifacts:
    CONFIG = ExperimentConfig(n_nodes=96, memory_budget_mb=64)

    def _dense_severity(self):
        ctx = ExperimentContext(ExperimentConfig(n_nodes=96))
        return ctx.severity

    def test_sharded_severity_bit_identical(self, sharded, tmp_path):
        ctx = ExperimentContext(self.CONFIG, cache=ArtifactCache(tmp_path / "c"))
        stitched = ctx.severity
        assert isinstance(stitched.severity, StitchedMatrix)
        dense = self._dense_severity()
        assert np.array_equal(
            np.asarray(stitched.severity), np.asarray(dense.severity), equal_nan=True
        )
        assert np.array_equal(
            np.asarray(stitched.violation_counts), np.asarray(dense.violation_counts)
        )

    def test_severity_result_api_works_on_stitched(self, sharded, tmp_path):
        ctx = ExperimentContext(self.CONFIG, cache=ArtifactCache(tmp_path / "c"))
        stitched, dense = ctx.severity, self._dense_severity()
        assert np.array_equal(
            stitched.edge_severities(), dense.edge_severities(), equal_nan=True
        )
        assert stitched.summary() == dense.summary()

    def test_warm_run_memmapped_no_misses(self, sharded, tmp_path):
        cold = ArtifactCache(tmp_path / "c")
        ExperimentContext(self.CONFIG, cache=cold).severity
        warm = ArtifactCache(tmp_path / "c")
        ctx = ExperimentContext(self.CONFIG, cache=warm)
        result = ctx.severity
        assert warm.stats.misses == 0
        assert warm.stats.stores == 0
        assert all(isinstance(b, np.memmap) for b in result.severity.blocks)
        # Shard memos are released once the stitched view exists.
        assert not any(
            key.node == "severity_shard" for key in ctx._values
        )

    def test_sharded_severity_bit_identical_at_400(self, monkeypatch, tmp_path):
        # The ISSUE-pinned scale point: a 400-node matrix, sharded (by
        # lowering the threshold to cover it), stitches back bit-for-bit.
        monkeypatch.setattr(shards_mod, "SHARD_NODE_THRESHOLD", 400)
        config = ExperimentConfig(n_nodes=400, memory_budget_mb=64)
        ctx = ExperimentContext(config, cache=ArtifactCache(tmp_path / "c"))
        stitched = ctx.severity
        assert stitched.severity.n_blocks >= 2
        dense = ExperimentContext(ExperimentConfig(n_nodes=400)).severity
        assert np.array_equal(
            np.asarray(stitched.severity), np.asarray(dense.severity), equal_nan=True
        )
        assert np.array_equal(
            np.asarray(stitched.violation_counts), np.asarray(dense.violation_counts)
        )

    def test_landmark_shortest_is_upper_bound(self, sharded, tmp_path):
        from repro.delayspace.shortest_path import shortest_path_matrix

        ctx = ExperimentContext(self.CONFIG, cache=ArtifactCache(tmp_path / "c"))
        approx = np.asarray(ctx.shortest_paths)
        truth = shortest_path_matrix(ExperimentContext(ExperimentConfig(n_nodes=96)).matrix)
        assert np.all(approx >= truth - 1e-9)
        finite = np.isfinite(truth) & (truth > 0)
        rel_err = (approx[finite] - truth[finite]) / truth[finite]
        # Landmark estimates are exact on landmark rows and loose elsewhere;
        # the mean error bound pins approximation quality, not exactness.
        assert float(rel_err.mean()) < 0.6

    def test_unsharded_addresses_unchanged_by_budget(self):
        # The memory budget must never move a below-threshold cache address:
        # a warm cache from a pre-shard run keeps hitting.
        from repro.artifacts.graph import resolve_artifact

        plain = ExperimentContext(ExperimentConfig(n_nodes=96))
        budgeted = ExperimentContext(self.CONFIG)
        for key in (ArtifactKey("severity", ("ds2_like", 96)), ArtifactKey("shortest")):
            assert (
                resolve_artifact(plain, key).address
                == resolve_artifact(budgeted, key).address
            )

    def test_warm_unsharded_cache_hits_after_upgrade(self, tmp_path):
        # Simulate a cache written before the shard tier existed: the exact
        # pre-PR parameter dicts must still address the same entries.
        cache = ArtifactCache(tmp_path / "c")
        ctx = ExperimentContext(ExperimentConfig(n_nodes=24, vivaldi_seconds=2), cache=cache)
        _ = ctx.severity
        _ = ctx.shortest_paths
        params_severity = ctx.artifact_params(ArtifactKey("severity", ("ds2_like", 24)))
        params_shortest = ctx.artifact_params(ArtifactKey("shortest"))
        assert "shards" not in params_severity
        assert "shards" not in params_shortest
        warm = ArtifactCache(tmp_path / "c")
        fresh = ExperimentContext(
            ExperimentConfig(n_nodes=24, vivaldi_seconds=2), cache=warm
        )
        _ = fresh.severity
        _ = fresh.shortest_paths
        assert warm.stats.misses == 0
        assert warm.stats.hits >= 2


class TestPruneShards:
    def test_orphaned_shard_arrays_pruned(self, tmp_path, sharded):
        cache_dir = tmp_path / "cache"
        config = ExperimentConfig(n_nodes=96, memory_budget_mb=64)
        ExperimentContext(config, cache=ArtifactCache(cache_dir)).severity
        kind_dir = cache_dir / "severity_shard"
        jsons = list(kind_dir.glob("*.json"))
        assert jsons
        # Orphan one shard entry: metadata gone, arrays left behind.
        orphan_stem = jsons[0].stem
        jsons[0].unlink()
        report = prune_cache(cache_dir)
        pruned_names = {entry.name for entry in report.pruned}
        assert any(name.startswith(orphan_stem) for name in pruned_names)
        assert not list(kind_dir.glob(f"{orphan_stem}__*.npy"))
        # Only the orphaned shard recomputes; the survivors still hit.
        warm = ArtifactCache(cache_dir)
        ExperimentContext(config, cache=warm).severity
        assert warm.stats.misses == 1

    def test_raw_entry_missing_array_pruned(self, tmp_path, sharded):
        cache_dir = tmp_path / "cache"
        config = ExperimentConfig(n_nodes=96, memory_budget_mb=64)
        ExperimentContext(config, cache=ArtifactCache(cache_dir)).severity
        kind_dir = cache_dir / "severity_shard"
        victim = sorted(kind_dir.glob("*__severity.npy"))[0]
        victim.unlink()
        report = prune_cache(cache_dir, dry_run=True)
        assert any("missing array file" in entry.reason for entry in report.pruned)


class TestConfigBudget:
    def test_budget_floor_validated(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(memory_budget_mb=16)

    def test_budget_accepted(self):
        assert ExperimentConfig(memory_budget_mb=256).memory_budget_mb == 256
