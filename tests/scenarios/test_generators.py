"""Tests for the scenario generator layer."""

import numpy as np
import pytest

from repro.delayspace.datasets import get_preset
from repro.scenarios.generators import (
    TOPOLOGIES,
    load_scenario_dataset,
    scenario_space_config,
)
from repro.scenarios.library import get_scenario
from repro.scenarios.spec import Scenario
from repro.tiv.severity import compute_tiv_severity

N = 40
SEED = 7


def load(scenario, preset="ds2_like", n=N, seed=SEED):
    return load_scenario_dataset(scenario, preset, n, seed)


class TestSpaceConfig:
    def test_topology_override(self):
        base = get_preset("ds2_like").config
        cfg = scenario_space_config(Scenario("s", topology="five_cluster"), base, N)
        assert cfg.clusters == TOPOLOGIES["five_cluster"]
        assert cfg.n_nodes == N

    def test_flat_topology_has_no_clusters(self):
        base = get_preset("ds2_like").config
        cfg = scenario_space_config(Scenario("s", topology="flat"), base, N)
        assert cfg.clusters == ()

    def test_tiv_none_disables_injection(self):
        base = get_preset("ds2_like").config
        cfg = scenario_space_config(Scenario("s", tiv_level="none"), base, N)
        assert cfg.tiv_edge_fraction == 0.0

    def test_tiv_heavy_scales_up(self):
        base = get_preset("ds2_like").config
        cfg = scenario_space_config(Scenario("s", tiv_level="heavy"), base, N)
        assert cfg.tiv_edge_fraction > base.tiv_edge_fraction
        assert cfg.inflation_shape < base.inflation_shape
        assert cfg.tiv_edge_fraction <= 0.6

    def test_powerlaw_access_switches_distribution(self):
        base = get_preset("ds2_like").config
        cfg = scenario_space_config(Scenario("s", access_model="powerlaw"), base, N)
        assert cfg.access_delay_distribution == "pareto"


class TestLoadScenarioDataset:
    def test_none_matches_plain_load(self):
        from repro.delayspace.datasets import load_dataset

        matrix, clusters = load(None)
        plain, plain_clusters = load_dataset(
            "ds2_like", n_nodes=N, rng=SEED, return_clusters=True
        )
        assert np.array_equal(matrix.values, plain.values, equal_nan=True)
        assert np.array_equal(clusters, plain_clusters)

    def test_noop_scenario_matches_plain_load(self):
        matrix, _ = load(get_scenario("baseline"))
        plain, _ = load(None)
        assert np.array_equal(matrix.values, plain.values, equal_nan=True)

    def test_deterministic_per_seed(self):
        scenario = get_scenario("noisy_sparse")
        first, c1 = load(scenario)
        second, c2 = load(scenario)
        assert np.array_equal(first.values, second.values, equal_nan=True)
        assert np.array_equal(c1, c2)

    def test_different_seeds_differ(self):
        scenario = get_scenario("noisy_sparse")
        a, _ = load(scenario, seed=1)
        b, _ = load(scenario, seed=2)
        assert not np.array_equal(a.values, b.values, equal_nan=True)

    def test_node_count_always_preserved(self):
        for name in ("baseline", "churn_snapshot", "churn_heavy", "noisy_sparse"):
            matrix, clusters = load(get_scenario(name))
            assert matrix.n_nodes == N
            assert clusters.shape == (N,)

    def test_churn_differs_from_baseline(self):
        churned, _ = load(get_scenario("churn_snapshot"))
        baseline, _ = load(None)
        assert not np.array_equal(churned.values, baseline.values, equal_nan=True)

    def test_dropout_fraction_matches_request(self):
        scenario = Scenario("s", dropout=0.10)
        matrix, _ = load(scenario)
        iu = np.triu_indices(N, k=1)
        missing = np.count_nonzero(~np.isfinite(matrix.values[iu]))
        assert missing == round(0.10 * iu[0].size)

    def test_rescale_scales_delays(self):
        doubled, _ = load(Scenario("s", rescale=2.0))
        baseline, _ = load(None)
        ratio = np.nanmedian(doubled.values[baseline.values > 0]) / np.nanmedian(
            baseline.values[baseline.values > 0]
        )
        assert ratio == pytest.approx(2.0, rel=0.05)

    def test_tiv_free_scenario_reduces_severity(self):
        free, _ = load(get_scenario("tiv_free"))
        heavy, _ = load(get_scenario("heavy_tiv"))
        free_mean = compute_tiv_severity(free).summary()["mean"]
        heavy_mean = compute_tiv_severity(heavy).summary()["mean"]
        # Disabling the detour injection leaves only measurement jitter, so
        # severities collapse to near zero; heavy injection dwarfs them.
        assert free_mean < 0.05
        assert heavy_mean > 5 * free_mean

    def test_asymmetric_scenario_stays_symmetric_rtt(self):
        # Per-direction asymmetry is averaged back into the RTT matrix, so
        # the DelayMatrix invariant (symmetry) must survive.
        matrix, _ = load(get_scenario("asymmetric"))
        assert np.allclose(matrix.values, matrix.values.T, equal_nan=True)
        baseline, _ = load(None)
        assert not np.array_equal(matrix.values, baseline.values, equal_nan=True)

    def test_euclidean_preset_applies_only_perturbations(self):
        # Pre-generation dimensions are no-ops on Euclidean presets...
        topo, _ = load(Scenario("s", topology="ring"), preset="uniform_euclidean")
        plain, _ = load(None, preset="uniform_euclidean")
        assert np.array_equal(topo.values, plain.values)
        # ...but perturbations still apply.
        rescaled, _ = load(Scenario("s", rescale=2.0), preset="uniform_euclidean")
        assert np.nanmax(rescaled.values) > 1.5 * np.nanmax(plain.values)

    def test_flat_topology_ground_truth_is_all_noise(self):
        matrix, clusters = load(get_scenario("flat_topology"))
        assert matrix.n_nodes == N
        assert set(np.unique(clusters)) == {0}
