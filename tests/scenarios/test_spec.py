"""Tests for the declarative scenario specification."""

import pytest

from repro.errors import ConfigError
from repro.scenarios.spec import Scenario


class TestValidation:
    def test_defaults_are_valid_and_noop(self):
        scenario = Scenario("anything")
        assert scenario.is_noop
        assert scenario.cache_params() == {}

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            Scenario("")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"topology": "hexagonal"},
            {"tiv_level": "extreme"},
            {"access_model": "uniform"},
            {"size_factor": 0.0},
            {"size_factor": -1.0},
            {"asymmetry": -0.1},
            {"asymmetry": 1.0},
            {"extra_jitter": 1.0},
            {"dropout": 1.0},
            {"dropout": -0.5},
            {"churn": 0.95},
            {"rescale": 0.0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            Scenario("bad", **kwargs)


class TestCacheParams:
    def test_only_non_default_knobs_enter_the_address(self):
        scenario = Scenario("s", tiv_level="heavy", dropout=0.05)
        assert scenario.cache_params() == {"tiv_level": "heavy", "dropout": 0.05}
        assert not scenario.is_noop

    def test_name_and_description_never_enter_the_address(self):
        a = Scenario("a", description="one", churn=0.2)
        b = Scenario("b", description="two", churn=0.2)
        assert a.cache_params() == b.cache_params()

    def test_size_factor_is_not_a_content_knob(self):
        # The size dimension acts through n_nodes (already part of every
        # artefact address); duplicating it here would split the cache.
        scenario = Scenario("s", size_factor=2.0)
        assert scenario.cache_params() == {}
        assert scenario.is_noop

    def test_seed_offset_is_a_content_knob(self):
        assert Scenario("s", seed_offset=3).cache_params() == {"seed_offset": 3}


class TestSerialisation:
    def test_as_dict_round_trips(self):
        scenario = Scenario("s", description="d", tiv_level="light", rescale=0.5)
        rebuilt = Scenario(**scenario.as_dict())
        assert rebuilt == scenario
