"""Tests for the scenario-matrix runner and its report."""

import json

import numpy as np
import pytest

from repro.errors import ConfigError, ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import results_equal, run_experiments
from repro.experiments.registry import run_experiment
from repro.scenarios.library import (
    SCENARIO_MATRICES,
    available_matrices,
    available_scenarios,
    get_scenario,
    scenario_matrix,
)
from repro.scenarios.runner import (
    SCENARIO_REPORT_SCHEMA,
    run_scenario_matrix,
    scenario_config,
)

TINY = ExperimentConfig(
    n_nodes=32,
    vivaldi_seconds=5,
    selection_runs=1,
    max_clients=8,
    meridian_small_count=8,
)


class TestLibrary:
    def test_small_is_a_subset_of_full(self):
        small = {s.name for s in scenario_matrix("small")}
        full = {s.name for s in scenario_matrix("full")}
        assert small < full

    def test_small_covers_the_core_dimensions(self):
        small = {s.name for s in scenario_matrix("small")}
        assert "baseline" in small
        assert {"tiv_free", "heavy_tiv"} <= small

    def test_matrices_listed(self):
        assert set(available_matrices()) == set(SCENARIO_MATRICES)

    def test_unknown_matrix_rejected(self):
        with pytest.raises(ConfigError):
            scenario_matrix("huge")

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError):
            get_scenario("not_a_scenario")

    def test_every_scenario_resolvable(self):
        for name in available_scenarios():
            assert get_scenario(name).name == name

    def test_baseline_is_the_only_noop(self):
        noops = [name for name in available_scenarios() if get_scenario(name).is_noop]
        # half_size/double_size are generative no-ops by design: their size
        # dimension acts through n_nodes before generation.
        assert "baseline" in noops
        assert set(noops) <= {"baseline", "half_size", "double_size"}


class TestScenarioConfig:
    def test_sets_scenario_name(self):
        cfg = scenario_config(TINY, get_scenario("heavy_tiv"))
        assert cfg.scenario == "heavy_tiv"
        assert cfg.n_nodes == TINY.n_nodes

    def test_size_factor_scales_node_count(self):
        cfg = scenario_config(TINY, get_scenario("double_size"))
        assert cfg.n_nodes == 2 * TINY.n_nodes
        half = scenario_config(TINY, get_scenario("half_size"))
        assert half.n_nodes == TINY.n_nodes // 2


class TestRunScenarioMatrix:
    def test_small_matrix_report(self, tmp_path):
        report_path = tmp_path / "BENCH_scenarios.json"
        outcome = run_scenario_matrix(
            TINY,
            matrix="small",
            only=["fig03"],
            jobs=1,
            cache_dir=tmp_path / "cache",
            report_path=report_path,
        )
        names = [s.name for s in scenario_matrix("small")]
        assert list(outcome.outcomes) == names

        payload = json.loads(report_path.read_text(encoding="utf-8"))
        assert payload["schema"] == SCENARIO_REPORT_SCHEMA
        assert payload["matrix"] == "small"
        assert [row["scenario"]["name"] for row in payload["scenarios"]] == names
        assert all(row["status"] == "ok" for row in payload["scenarios"])
        assert payload["totals"]["scenarios"] == len(names)
        assert payload["totals"]["experiments"] == len(names)
        assert payload["totals"]["failed_scenarios"] == 0

    def test_warm_rerun_is_all_cache_hits(self, tmp_path):
        kwargs = dict(
            matrix="small", only=["fig03"], jobs=1, cache_dir=tmp_path / "cache"
        )
        cold = run_scenario_matrix(TINY, **kwargs)
        assert cold.report.total_cache().misses > 0
        warm = run_scenario_matrix(TINY, **kwargs)
        total = warm.report.total_cache()
        assert total.misses == 0
        assert total.hits > 0
        assert warm.report.all_cache_hits
        for name in warm.outcomes:
            assert results_equal(
                cold.outcomes[name].results["fig03"].data,
                warm.outcomes[name].results["fig03"].data,
            ), name

    def test_parallel_matrix_matches_sequential(self, tmp_path):
        kwargs = dict(scenarios=["baseline", "heavy_tiv"], only=["fig03", "fig08"])
        sequential = run_scenario_matrix(
            TINY, jobs=1, cache_dir=tmp_path / "c1", **kwargs
        )
        parallel = run_scenario_matrix(
            TINY, jobs=2, cache_dir=tmp_path / "c2", **kwargs
        )
        for name, seq_outcome in sequential.outcomes.items():
            for experiment_id, result in seq_outcome.results.items():
                assert results_equal(
                    result.data, parallel.outcomes[name].results[experiment_id].data
                ), (name, experiment_id)
        payload = parallel.report.as_dict()
        assert all(row["status"] == "ok" for row in payload["scenarios"])
        assert all(
            row["report"]["shared_precompute"] is not None
            for row in payload["scenarios"]
        )

    def test_parallel_warm_rerun_is_all_cache_hits(self, tmp_path):
        kwargs = dict(
            scenarios=["baseline", "tiv_free"],
            only=["fig03"],
            jobs=2,
            cache_dir=tmp_path / "cache",
        )
        run_scenario_matrix(TINY, **kwargs)
        warm = run_scenario_matrix(TINY, **kwargs)
        total = warm.report.total_cache()
        assert total.misses == 0
        assert total.hits > 0
        assert warm.report.all_cache_hits

    def test_parallel_uncached_matrix_runs(self):
        outcome = run_scenario_matrix(
            TINY, scenarios=["baseline", "heavy_tiv"], only=["fig03"], jobs=2
        )
        assert all(not o.failures for o in outcome.outcomes.values())
        assert outcome.report.cache_dir is None
        # The ephemeral scratch directory must not leak into the nested
        # per-scenario reports either (it is deleted after the run).
        for row in outcome.report.as_dict()["scenarios"]:
            assert row["report"]["cache_dir"] is None

    def test_scenarios_produce_distinct_results(self, tmp_path):
        outcome = run_scenario_matrix(
            TINY,
            scenarios=["baseline", "heavy_tiv"],
            only=["fig03"],
            jobs=1,
            cache_dir=tmp_path / "cache",
        )
        baseline = outcome.outcomes["baseline"].results["fig03"].data
        heavy = outcome.outcomes["heavy_tiv"].results["fig03"].data
        assert not results_equal(baseline, heavy)

    def test_explicit_scenario_subset(self):
        outcome = run_scenario_matrix(
            TINY, scenarios=["tiv_free"], only=["fig03"], jobs=1
        )
        assert list(outcome.outcomes) == ["tiv_free"]
        assert outcome.report.matrix == "custom"

    def test_only_iterable_consumed_once(self):
        # A one-shot iterable must select the same figures for every
        # scenario, not just the first one.
        outcome = run_scenario_matrix(
            TINY, scenarios=["baseline", "tiv_free"], only=iter(["fig03"]), jobs=1
        )
        for name, scenario_outcome in outcome.outcomes.items():
            assert list(scenario_outcome.results) == ["fig03"], name

    def test_warm_failure_recorded_not_fatal(self, tmp_path, monkeypatch):
        # A scenario whose shared phase blows up is recorded against every
        # figure; the rest of the matrix still runs and the report is
        # written before the summary error is raised.
        from repro.scenarios import runner as runner_module

        real_engine = runner_module.ExperimentEngine

        class Flaky(real_engine):
            def run(self, only=None):
                if self.config.scenario == "tiv_free":
                    raise RuntimeError("generator exploded")
                return super().run(only=only)

        monkeypatch.setattr(runner_module, "ExperimentEngine", Flaky)
        report_path = tmp_path / "BENCH_scenarios.json"
        with pytest.raises(ExperimentError, match="generator exploded") as excinfo:
            run_scenario_matrix(
                TINY,
                scenarios=["baseline", "tiv_free"],
                only=["fig03"],
                jobs=1,
                report_path=report_path,
            )
        assert isinstance(excinfo.value.__cause__, RuntimeError)
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        by_name = {row["scenario"]["name"]: row for row in payload["scenarios"]}
        assert by_name["baseline"]["status"] == "ok"
        assert by_name["tiv_free"]["status"] == "error"
        assert "generator exploded" in by_name["tiv_free"]["failures"]["fig03"]
        shared = by_name["tiv_free"]["report"]["shared_precompute"]
        assert shared["status"] == "error"

    def test_empty_scenario_list_rejected(self):
        with pytest.raises(ExperimentError, match="empty scenario list"):
            run_scenario_matrix(TINY, scenarios=[], only=["fig03"])

    def test_base_config_with_scenario_rejected(self):
        import dataclasses

        scoped = dataclasses.replace(TINY, scenario="heavy_tiv")
        with pytest.raises(ExperimentError, match="scenario-free"):
            run_scenario_matrix(scoped, only=["fig03"])

    def test_failures_recorded_and_raised(self, tmp_path, monkeypatch):
        from repro.experiments import registry

        def _boom(config=None, *, context=None, **kwargs):
            raise RuntimeError("scenario failure")

        monkeypatch.setitem(
            registry._REGISTRY,
            "fig03",
            registry.RegisteredExperiment(_boom, frozenset({"matrix"})),
        )
        report_path = tmp_path / "BENCH_scenarios.json"
        # The raised summary carries the per-figure error text and chains
        # the original exception, so CI logs are diagnosable without the
        # report file.
        with pytest.raises(ExperimentError, match="scenario failure") as excinfo:
            run_scenario_matrix(
                TINY,
                scenarios=["baseline", "tiv_free"],
                only=["fig03"],
                jobs=1,
                report_path=report_path,
            )
        assert isinstance(excinfo.value.__cause__, RuntimeError)
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        assert all(row["status"] == "error" for row in payload["scenarios"])
        assert payload["totals"]["failed_scenarios"] == 2


class TestScenarioDimensionIntegration:
    def test_run_experiment_scenario_shorthand(self):
        import dataclasses

        via_kwarg = run_experiment("fig03", TINY, scenario="heavy_tiv")
        via_config = run_experiment(
            "fig03", dataclasses.replace(TINY, scenario="heavy_tiv")
        )
        assert results_equal(via_kwarg.data, via_config.data)

    def test_run_experiment_conflicting_scenarios_rejected(self):
        import dataclasses

        scoped = dataclasses.replace(TINY, scenario="tiv_free")
        with pytest.raises(ExperimentError, match="conflicting"):
            run_experiment("fig03", scoped, scenario="heavy_tiv")

    def test_context_cannot_be_rescoped(self):
        from repro.experiments.context import ExperimentContext

        context = ExperimentContext(TINY)
        with pytest.raises(ExperimentError, match="re-scoped"):
            run_experiment("fig03", context=context, scenario="heavy_tiv")

    def test_unknown_scenario_fails_at_context_construction(self):
        import dataclasses

        from repro.experiments.context import ExperimentContext

        with pytest.raises(ConfigError, match="unknown scenario"):
            ExperimentContext(dataclasses.replace(TINY, scenario="nope"))

    def test_engine_runs_scenario_config_with_cache(self, tmp_path):
        import dataclasses

        scoped = dataclasses.replace(TINY, scenario="heavy_tiv")
        cold = run_experiments(
            scoped, only=["fig03"], jobs=1, cache_dir=tmp_path / "cache"
        )
        warm = run_experiments(
            scoped, only=["fig03"], jobs=1, cache_dir=tmp_path / "cache"
        )
        assert warm.report.all_cache_hits
        assert results_equal(
            cold.results["fig03"].data, warm.results["fig03"].data
        )

    def test_scenario_and_baseline_cache_entries_do_not_collide(self, tmp_path):
        import dataclasses

        cache_dir = tmp_path / "cache"
        plain = run_experiments(TINY, only=["fig03"], jobs=1, cache_dir=cache_dir)
        scoped = run_experiments(
            dataclasses.replace(TINY, scenario="heavy_tiv"),
            only=["fig03"],
            jobs=1,
            cache_dir=cache_dir,
        )
        # The scenario run found a warm cache but none of its own entries.
        assert scoped.report.total_cache().misses > 0
        assert not results_equal(
            plain.results["fig03"].data, scoped.results["fig03"].data
        )

    def test_baseline_scenario_shares_cache_with_plain_runs(self, tmp_path):
        import dataclasses

        cache_dir = tmp_path / "cache"
        run_experiments(TINY, only=["fig03"], jobs=1, cache_dir=cache_dir)
        baseline = run_experiments(
            dataclasses.replace(TINY, scenario="baseline"),
            only=["fig03"],
            jobs=1,
            cache_dir=cache_dir,
        )
        assert baseline.report.all_cache_hits

    def test_parallel_scenario_run_matches_sequential(self, tmp_path):
        import dataclasses

        scoped = dataclasses.replace(TINY, scenario="noisy_sparse")
        sequential = run_experiments(scoped, only=["fig03"], jobs=1)
        parallel = run_experiments(
            scoped, only=["fig03"], jobs=2, cache_dir=tmp_path / "cache"
        )
        assert results_equal(
            sequential.results["fig03"].data, parallel.results["fig03"].data
        )

    def test_cli_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        report_path = tmp_path / "BENCH_scenarios.json"
        exit_code = main(
            [
                "run-scenarios",
                "--scenario",
                "baseline",
                "tiv_free",
                "--only",
                "fig03",
                "--nodes",
                "32",
                "--report",
                str(report_path),
            ]
        )
        assert exit_code == 0
        stdout = capsys.readouterr().out
        payload = json.loads(stdout)
        assert payload["schema"] == SCENARIO_REPORT_SCHEMA
        assert report_path.exists()

    def test_cli_scenarios_listing(self, capsys):
        from repro.cli import main

        assert main(["scenarios", "--matrix", "small"]) == 0
        listed = json.loads(capsys.readouterr().out)
        assert [row["name"] for row in listed] == [
            s.name for s in scenario_matrix("small")
        ]

    def test_cli_run_with_scenario_flag(self, capsys):
        from repro.cli import main

        assert (
            main(["run", "fig03", "--nodes", "32", "--scenario", "heavy_tiv"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "fig03"

    def test_size_only_scenario_scales_through_every_entry_point(self, capsys):
        # half_size has no generative knobs; its size_factor must still
        # apply when the scenario is named via the registry shorthand or
        # the CLI, not only through run_scenario_matrix.
        import dataclasses

        from repro.cli import main

        via_registry = run_experiment("fig03", TINY, scenario="half_size")
        # A generative no-op at half the node count: identical to running
        # the plain config at n_nodes // 2.
        direct = run_experiment(
            "fig03", dataclasses.replace(TINY, n_nodes=TINY.n_nodes // 2)
        )
        assert results_equal(via_registry.data, direct.data)

        assert main(["run-all", "--nodes", "32", "--only", "fig03",
                     "--scenario", "half_size"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["n_nodes"] == 16
        assert payload["config"]["scenario"] == "half_size"


class TestScenarioValuesAreReasonable:
    def test_heavy_tiv_raises_severity_over_baseline(self):
        from repro.experiments.context import ExperimentContext

        import dataclasses

        base = ExperimentContext(TINY).severity.summary()["mean"]
        heavy = ExperimentContext(
            dataclasses.replace(TINY, scenario="heavy_tiv")
        ).severity.summary()["mean"]
        assert heavy > base

    def test_matrix_values_match_direct_generator_output(self):
        import dataclasses

        from repro.experiments.context import ExperimentContext
        from repro.scenarios.generators import load_scenario_dataset
        from repro.scenarios.library import get_scenario

        ctx = ExperimentContext(dataclasses.replace(TINY, scenario="churn_snapshot"))
        direct, _ = load_scenario_dataset(
            get_scenario("churn_snapshot"), TINY.dataset, TINY.n_nodes, TINY.seed
        )
        assert np.array_equal(ctx.matrix.values, direct.values, equal_nan=True)
