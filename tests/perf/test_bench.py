"""Tests for the repro.perf benchmark subsystem."""

import json

import numpy as np
import pytest

from repro.perf.bench import SCHEMA, run_benchmarks, write_report
from repro.perf.kernels import BenchmarkError, available_kernels, get_kernel

#: Small enough that every kernel runs in milliseconds.
TINY = 24


class TestKernelRegistry:
    def test_expected_kernels_registered(self):
        names = available_kernels()
        assert "vivaldi_step_batched" in names
        assert "vivaldi_step_reference" in names
        assert "tiv_severity" in names
        assert "shortest_paths" in names
        assert "scenario_generation" in names

    def test_unknown_kernel_raises(self):
        with pytest.raises(BenchmarkError):
            get_kernel("warp_drive")

    @pytest.mark.parametrize("name", available_kernels())
    def test_every_kernel_sets_up_and_runs(self, name):
        run, work = get_kernel(name).setup(TINY, seed=0)
        assert work > 0
        run()  # must execute without error

    def test_vivaldi_kernels_advance_the_simulation(self):
        run, _ = get_kernel("vivaldi_step_batched").setup(TINY, seed=0)
        movement = run()
        assert isinstance(movement, np.ndarray)
        assert movement.shape == (TINY,)


class TestRunBenchmarks:
    def test_report_structure(self):
        report = run_benchmarks(
            kernels=["vivaldi_step_batched", "tiv_severity"],
            sizes=[TINY],
            repeats=2,
            warmup=0,
        )
        assert report.sizes == (TINY,)
        assert len(report.timings) == 2
        for row in report.timings:
            assert row.best_seconds > 0
            assert row.mean_seconds >= row.best_seconds
            assert row.throughput > 0
            assert row.repeats == 2

    def test_timing_lookup(self):
        report = run_benchmarks(
            kernels=["vivaldi_step_batched"], sizes=[TINY], repeats=1, warmup=0
        )
        assert report.timing("vivaldi_step_batched", TINY) is not None
        assert report.timing("vivaldi_step_batched", 999) is None
        assert report.timing("tiv_severity", TINY) is None

    def test_vivaldi_speedup_requires_both_kernels(self):
        only_batched = run_benchmarks(
            kernels=["vivaldi_step_batched"], sizes=[TINY], repeats=1, warmup=0
        )
        assert only_batched.vivaldi_speedups() == {}
        both = run_benchmarks(
            kernels=["vivaldi_step_batched", "vivaldi_step_reference"],
            sizes=[TINY],
            repeats=1,
            warmup=0,
        )
        speedups = both.vivaldi_speedups()
        assert set(speedups) == {str(TINY)}
        assert speedups[str(TINY)] > 0

    def test_as_dict_schema(self):
        report = run_benchmarks(
            kernels=["vivaldi_step_batched"], sizes=[TINY], repeats=1, warmup=0
        )
        payload = report.as_dict()
        assert payload["schema"] == SCHEMA
        assert payload["sizes"] == [TINY]
        assert {"python", "numpy", "scipy", "machine"} <= set(payload["environment"])
        assert payload["kernels"][0]["kernel"] == "vivaldi_step_batched"

    def test_write_report_round_trips(self, tmp_path):
        report = run_benchmarks(
            kernels=["vivaldi_step_batched"], sizes=[TINY], repeats=1, warmup=0
        )
        path = tmp_path / "BENCH_perf.json"
        write_report(report, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == SCHEMA
        assert loaded["kernels"] == [row.as_dict() for row in report.timings]

    def test_invalid_arguments(self):
        with pytest.raises(BenchmarkError):
            run_benchmarks(sizes=[])
        with pytest.raises(BenchmarkError):
            run_benchmarks(sizes=[4])
        with pytest.raises(BenchmarkError):
            run_benchmarks(sizes=[TINY], repeats=0)
        with pytest.raises(BenchmarkError):
            run_benchmarks(sizes=[TINY], warmup=-1)
        with pytest.raises(BenchmarkError):
            run_benchmarks(kernels=["nope"], sizes=[TINY])


class TestBenchCli:
    def _run(self, capsys, *argv):
        from repro.cli import main

        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured

    def test_bench_emits_json(self, capsys):
        code, captured = self._run(
            capsys,
            "bench",
            "--sizes",
            str(TINY),
            "--kernels",
            "vivaldi_step_batched",
            "vivaldi_step_reference",
            "--repeats",
            "1",
            "--warmup",
            "0",
        )
        assert code == 0
        payload = json.loads(captured.out)
        assert payload["schema"] == SCHEMA
        assert str(TINY) in payload["vivaldi_speedup"]

    def test_bench_writes_report_file(self, capsys, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        code, captured = self._run(
            capsys,
            "bench",
            "--sizes",
            str(TINY),
            "--kernels",
            "tiv_severity",
            "--repeats",
            "1",
            "--warmup",
            "0",
            "--report",
            str(path),
        )
        assert code == 0
        assert "wrote bench report" in captured.err
        loaded = json.loads(path.read_text())
        assert loaded["kernels"][0]["kernel"] == "tiv_severity"

    def test_bench_rejects_bad_sizes(self, capsys):
        code, captured = self._run(capsys, "bench", "--sizes", "abc")
        assert code == 1
        assert "comma-separated integers" in captured.err

    def test_bench_rejects_too_small_sizes(self, capsys):
        code, captured = self._run(capsys, "bench", "--sizes", "4")
        assert code == 1
        assert "error:" in captured.err
