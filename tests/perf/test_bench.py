"""Tests for the repro.perf benchmark subsystem."""

import json

import numpy as np
import pytest

from repro.perf.bench import SCHEMA, run_benchmarks, write_report
from repro.perf.kernels import (
    BenchmarkError,
    available_kernels,
    get_kernel,
    kernel_families,
    resolve_kernel_names,
)

#: Small enough that every kernel runs in milliseconds.
TINY = 24


class TestKernelRegistry:
    def test_expected_kernels_registered(self):
        names = available_kernels()
        for family in (
            "vivaldi_step",
            "gnp_fit",
            "ides_fit",
            "lat_adjust",
            "meridian_query",
            "stream_closest",
        ):
            assert f"{family}_batched" in names
            assert f"{family}_reference" in names
        assert "tiv_severity" in names
        assert "shortest_paths" in names
        assert "scenario_generation" in names
        assert "artifact_restore_disk" in names
        assert "artifact_attach_shm" in names

    def test_unknown_kernel_raises(self):
        with pytest.raises(BenchmarkError):
            get_kernel("warp_drive")

    def test_kernel_families_pair_batched_with_reference(self):
        families = kernel_families()
        assert set(families) == {
            "vivaldi_step",
            "gnp_fit",
            "ides_fit",
            "lat_adjust",
            "meridian_query",
            "stream_closest",
            "artifact_transport",
        }
        for family, (batched, reference) in families.items():
            if family == "artifact_transport":
                continue  # explicitly paired, no suffix convention
            assert batched == f"{family}_batched"
            assert reference == f"{family}_reference"
        # The explicit pair keeps the (fast, reference) orientation.
        assert families["artifact_transport"] == (
            "artifact_attach_shm",
            "artifact_restore_disk",
        )

    def test_artifact_transport_family_expands(self):
        assert resolve_kernel_names(["artifact_transport"]) == (
            "artifact_attach_shm",
            "artifact_restore_disk",
        )

    def test_resolve_kernel_names_expands_families_and_commas(self):
        assert resolve_kernel_names(["gnp_fit"]) == (
            "gnp_fit_batched",
            "gnp_fit_reference",
        )
        assert resolve_kernel_names(["gnp_fit,ides_fit", "tiv_severity"]) == (
            "gnp_fit_batched",
            "gnp_fit_reference",
            "ides_fit_batched",
            "ides_fit_reference",
            "tiv_severity",
        )
        # Plain names pass through; duplicates collapse in first-seen order.
        assert resolve_kernel_names(["lat_adjust_batched", "lat_adjust"]) == (
            "lat_adjust_batched",
            "lat_adjust_reference",
        )

    def test_resolve_kernel_names_rejects_unknown(self):
        with pytest.raises(BenchmarkError):
            resolve_kernel_names(["warp_drive"])
        with pytest.raises(BenchmarkError):
            resolve_kernel_names(["gnp_fit,warp_drive"])

    @pytest.mark.parametrize("name", available_kernels())
    def test_every_kernel_sets_up_and_runs(self, name):
        run, work = get_kernel(name).setup(TINY, seed=0)
        assert work > 0
        run()  # must execute without error

    def test_vivaldi_kernels_advance_the_simulation(self):
        run, _ = get_kernel("vivaldi_step_batched").setup(TINY, seed=0)
        movement = run()
        assert isinstance(movement, np.ndarray)
        assert movement.shape == (TINY,)


class TestRunBenchmarks:
    def test_report_structure(self):
        report = run_benchmarks(
            kernels=["vivaldi_step_batched", "tiv_severity"],
            sizes=[TINY],
            repeats=2,
            warmup=0,
        )
        assert report.sizes == (TINY,)
        assert len(report.timings) == 2
        for row in report.timings:
            assert row.best_seconds > 0
            assert row.mean_seconds >= row.best_seconds
            assert row.throughput > 0
            assert row.repeats == 2

    def test_timing_lookup(self):
        report = run_benchmarks(
            kernels=["vivaldi_step_batched"], sizes=[TINY], repeats=1, warmup=0
        )
        assert report.timing("vivaldi_step_batched", TINY) is not None
        assert report.timing("vivaldi_step_batched", 999) is None
        assert report.timing("tiv_severity", TINY) is None

    def test_speedups_grouped_by_family(self):
        report = run_benchmarks(
            kernels=[
                "gnp_fit_batched",
                "gnp_fit_reference",
                "lat_adjust_batched",
                "tiv_severity",
            ],
            sizes=[TINY],
            repeats=1,
            warmup=0,
        )
        speedups = report.speedups()
        # Only complete pairs produce a family entry; unpaired and
        # pairless kernels are absent.
        assert set(speedups) == {"gnp_fit"}
        assert set(speedups["gnp_fit"]) == {str(TINY)}
        assert speedups["gnp_fit"][str(TINY)] > 0

    def test_vivaldi_speedup_requires_both_kernels(self):
        only_batched = run_benchmarks(
            kernels=["vivaldi_step_batched"], sizes=[TINY], repeats=1, warmup=0
        )
        assert only_batched.vivaldi_speedups() == {}
        both = run_benchmarks(
            kernels=["vivaldi_step_batched", "vivaldi_step_reference"],
            sizes=[TINY],
            repeats=1,
            warmup=0,
        )
        speedups = both.vivaldi_speedups()
        assert set(speedups) == {str(TINY)}
        assert speedups[str(TINY)] > 0

    def test_as_dict_schema(self):
        report = run_benchmarks(
            kernels=["vivaldi_step_batched"], sizes=[TINY], repeats=1, warmup=0
        )
        payload = report.as_dict()
        assert payload["schema"] == SCHEMA
        assert payload["sizes"] == [TINY]
        assert {"python", "numpy", "scipy", "machine"} <= set(payload["environment"])
        assert payload["kernels"][0]["kernel"] == "vivaldi_step_batched"
        assert "speedups" in payload

    def test_write_report_round_trips(self, tmp_path):
        report = run_benchmarks(
            kernels=["vivaldi_step_batched"], sizes=[TINY], repeats=1, warmup=0
        )
        path = tmp_path / "BENCH_perf.json"
        write_report(report, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == SCHEMA
        assert loaded["kernels"] == [row.as_dict() for row in report.timings]

    def test_invalid_arguments(self):
        with pytest.raises(BenchmarkError):
            run_benchmarks(sizes=[])
        with pytest.raises(BenchmarkError):
            run_benchmarks(sizes=[4])
        with pytest.raises(BenchmarkError):
            run_benchmarks(sizes=[TINY], repeats=0)
        with pytest.raises(BenchmarkError):
            run_benchmarks(sizes=[TINY], warmup=-1)
        with pytest.raises(BenchmarkError):
            run_benchmarks(kernels=["nope"], sizes=[TINY])


class TestBenchCli:
    def _run(self, capsys, *argv):
        from repro.cli import main

        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured

    def test_bench_emits_json(self, capsys):
        code, captured = self._run(
            capsys,
            "bench",
            "--sizes",
            str(TINY),
            "--kernels",
            "vivaldi_step_batched",
            "vivaldi_step_reference",
            "--repeats",
            "1",
            "--warmup",
            "0",
        )
        assert code == 0
        payload = json.loads(captured.out)
        assert payload["schema"] == SCHEMA
        assert str(TINY) in payload["vivaldi_speedup"]

    def test_bench_writes_report_file(self, capsys, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        code, captured = self._run(
            capsys,
            "bench",
            "--sizes",
            str(TINY),
            "--kernels",
            "tiv_severity",
            "--repeats",
            "1",
            "--warmup",
            "0",
            "--report",
            str(path),
        )
        assert code == 0
        assert "wrote bench report" in captured.err
        loaded = json.loads(path.read_text())
        assert loaded["kernels"][0]["kernel"] == "tiv_severity"

    def test_bench_accepts_family_and_comma_tokens(self, capsys):
        code, captured = self._run(
            capsys,
            "bench",
            "--sizes",
            str(TINY),
            "--kernels",
            "lat_adjust,tiv_severity",
            "--repeats",
            "1",
            "--warmup",
            "0",
        )
        assert code == 0
        payload = json.loads(captured.out)
        timed = {row["kernel"] for row in payload["kernels"]}
        assert timed == {"lat_adjust_batched", "lat_adjust_reference", "tiv_severity"}
        assert str(TINY) in payload["speedups"]["lat_adjust"]

    def test_bench_rejects_unknown_kernel_token(self, capsys):
        code, captured = self._run(capsys, "bench", "--kernels", "warp_drive")
        assert code == 1
        assert "unknown benchmark kernel" in captured.err

    def test_bench_rejects_bad_sizes(self, capsys):
        code, captured = self._run(capsys, "bench", "--sizes", "abc")
        assert code == 1
        assert "comma-separated integers" in captured.err

    def test_bench_rejects_too_small_sizes(self, capsys):
        code, captured = self._run(capsys, "bench", "--sizes", "4")
        assert code == 1
        assert "error:" in captured.err
