"""Tests for repro.perf."""
