"""Tests for the repro.perf.gate CI perf-regression gate."""

import json

import pytest

from repro.perf.bench import SCHEMA
from repro.perf.gate import (
    DEFAULT_THRESHOLD,
    compare_reports,
    format_table,
    load_report,
    regressions,
)
from repro.perf.kernels import BenchmarkError


def report_with(rows: list[tuple[str, int, float]]) -> dict:
    return {
        "schema": SCHEMA,
        "kernels": [
            {"kernel": kernel, "size": size, "best_seconds": best}
            for kernel, size, best in rows
        ],
    }


class TestLoadReport:
    def test_round_trips_a_written_report(self, tmp_path):
        path = tmp_path / "report.json"
        payload = report_with([("gnp_fit_batched", 100, 0.01)])
        path.write_text(json.dumps(payload))
        assert load_report(str(path)) == payload

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(BenchmarkError, match="does not exist"):
            load_report(str(tmp_path / "nope.json"))

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(BenchmarkError, match="not valid JSON"):
            load_report(str(path))

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": "something-else/9", "kernels": []}))
        with pytest.raises(BenchmarkError, match="schema"):
            load_report(str(path))

    def test_committed_baseline_loads(self):
        # The repo's own trajectory file must always satisfy the gate's
        # schema expectations — CI compares against it on every PR.
        report = load_report("BENCH_perf.json")
        assert report["kernels"]


class TestCompareReports:
    def test_ok_and_regression_statuses(self):
        baseline = report_with([("a", 100, 0.010), ("b", 100, 0.010)])
        current = report_with([("a", 100, 0.020), ("b", 100, 0.030)])
        rows = compare_reports(baseline, current, threshold=2.5)
        by_kernel = {row.kernel: row for row in rows}
        assert by_kernel["a"].status == "ok"
        assert by_kernel["a"].ratio == pytest.approx(2.0)
        assert by_kernel["b"].status == "regression"
        assert by_kernel["b"].ratio == pytest.approx(3.0)
        assert [row.kernel for row in regressions(rows)] == ["b"]

    def test_boundary_is_not_a_regression(self):
        baseline = report_with([("a", 100, 0.010)])
        current = report_with([("a", 100, 0.025)])
        (row,) = compare_reports(baseline, current, threshold=2.5)
        assert row.status == "ok"

    def test_new_and_missing_pairs_never_fail(self):
        baseline = report_with([("a", 100, 0.010), ("a", 400, 0.040)])
        current = report_with([("a", 100, 0.010), ("brand_new", 100, 0.005)])
        rows = compare_reports(baseline, current)
        statuses = {(row.kernel, row.size): row.status for row in rows}
        assert statuses[("a", 100)] == "ok"
        assert statuses[("a", 400)] == "missing"
        assert statuses[("brand_new", 100)] == "new"
        assert not regressions(rows)

    def test_faster_current_is_ok(self):
        baseline = report_with([("a", 100, 0.100)])
        current = report_with([("a", 100, 0.001)])
        (row,) = compare_reports(baseline, current)
        assert row.status == "ok"
        assert row.ratio < 1.0

    def test_rows_sorted_by_kernel_then_size(self):
        baseline = report_with([("b", 200, 1.0), ("a", 400, 1.0), ("a", 100, 1.0)])
        rows = compare_reports(baseline, report_with([]))
        assert [(row.kernel, row.size) for row in rows] == [
            ("a", 100),
            ("a", 400),
            ("b", 200),
        ]

    def test_invalid_threshold_raises(self):
        baseline = report_with([("a", 100, 1.0)])
        with pytest.raises(BenchmarkError):
            compare_reports(baseline, baseline, threshold=1.0)

    def test_empty_reports_raise(self):
        with pytest.raises(BenchmarkError):
            compare_reports(report_with([]), report_with([]))


class TestFormatTable:
    def test_passing_table_contains_rows_and_verdict(self):
        rows = compare_reports(
            report_with([("a", 100, 0.010)]), report_with([("a", 100, 0.012)])
        )
        table = format_table(rows, threshold=DEFAULT_THRESHOLD)
        assert "✅" in table
        assert "| a | 100 |" in table
        assert "1.20x" in table

    def test_failing_table_flags_regressions(self):
        rows = compare_reports(
            report_with([("a", 100, 0.010)]), report_with([("a", 100, 0.050)])
        )
        table = format_table(rows)
        assert "❌" in table
        assert "regression" in table


class TestPerfGateCli:
    def _run(self, capsys, *argv):
        from repro.cli import main

        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured

    def _write(self, path, rows):
        path.write_text(json.dumps(report_with(rows)))
        return str(path)

    def test_gate_passes_and_prints_table(self, capsys, tmp_path):
        baseline = self._write(tmp_path / "base.json", [("a", 100, 0.010)])
        current = self._write(tmp_path / "cur.json", [("a", 100, 0.011)])
        code, captured = self._run(
            capsys, "perf-gate", "--baseline", baseline, "--current", current
        )
        assert code == 0
        assert "Perf gate" in captured.out
        assert "✅" in captured.out

    def test_gate_fails_on_regression(self, capsys, tmp_path):
        baseline = self._write(tmp_path / "base.json", [("a", 100, 0.010)])
        current = self._write(tmp_path / "cur.json", [("a", 100, 0.100)])
        code, captured = self._run(
            capsys, "perf-gate", "--baseline", baseline, "--current", current
        )
        assert code == 1
        assert "regressed more than" in captured.err
        assert "a@100" in captured.err

    def test_gate_threshold_flag(self, capsys, tmp_path):
        baseline = self._write(tmp_path / "base.json", [("a", 100, 0.010)])
        current = self._write(tmp_path / "cur.json", [("a", 100, 0.100)])
        code, _ = self._run(
            capsys,
            "perf-gate",
            "--baseline",
            baseline,
            "--current",
            current,
            "--threshold",
            "20",
        )
        assert code == 0

    def test_gate_appends_to_summary_file(self, capsys, tmp_path):
        baseline = self._write(tmp_path / "base.json", [("a", 100, 0.010)])
        current = self._write(tmp_path / "cur.json", [("a", 100, 0.011)])
        summary = tmp_path / "summary.md"
        summary.write_text("# prior section\n")
        code, _ = self._run(
            capsys,
            "perf-gate",
            "--baseline",
            baseline,
            "--current",
            current,
            "--summary",
            str(summary),
        )
        assert code == 0
        content = summary.read_text()
        assert content.startswith("# prior section\n")
        assert "Perf gate" in content

    def test_gate_reports_missing_baseline(self, capsys, tmp_path):
        current = self._write(tmp_path / "cur.json", [("a", 100, 0.010)])
        code, captured = self._run(
            capsys,
            "perf-gate",
            "--baseline",
            str(tmp_path / "absent.json"),
            "--current",
            current,
        )
        assert code == 1
        assert "does not exist" in captured.err
