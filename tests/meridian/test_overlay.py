"""Tests for repro.meridian.overlay, including the Fig. 12 scenario."""

import numpy as np
import pytest

from repro.delayspace.matrix import DelayMatrix
from repro.errors import MeridianError
from repro.meridian.overlay import MeridianOverlay
from repro.meridian.rings import MeridianConfig


def fig12_matrix() -> DelayMatrix:
    """The §3.2.2 / Fig. 12 scenario.

    Nodes: A=0, B=1, N=2, T=3 with d(A,T)=12, d(T,N)=1, d(A,N)=25,
    d(A,B)=11, d(B,T)=4, d(B,N)=12.  Three of the four triangles violate the
    triangle inequality, which makes Meridian return B although N is the
    true closest node to T.
    """
    delays = np.array(
        [
            [0.0, 11.0, 25.0, 12.0],
            [11.0, 0.0, 12.0, 4.0],
            [25.0, 12.0, 0.0, 1.0],
            [12.0, 4.0, 1.0, 0.0],
        ]
    )
    return DelayMatrix(delays, labels=("A", "B", "N", "T"), symmetrize=False)


class TestOverlayConstruction:
    def test_requires_two_meridian_nodes(self, small_internet_matrix):
        with pytest.raises(MeridianError):
            MeridianOverlay(small_internet_matrix, [0])

    def test_duplicate_nodes_raise(self, small_internet_matrix):
        with pytest.raises(MeridianError):
            MeridianOverlay(small_internet_matrix, [0, 0, 1])

    def test_out_of_range_node_raises(self, small_internet_matrix):
        with pytest.raises(MeridianError):
            MeridianOverlay(small_internet_matrix, [0, 10_000])

    def test_full_membership_populates_all(self, small_internet_matrix):
        ids = list(range(10))
        overlay = MeridianOverlay(
            small_internet_matrix, ids, MeridianConfig(k=16), rng=0, full_membership=True
        )
        for node_id in ids:
            assert len(overlay.node(node_id).members()) == 9

    def test_sampled_membership_capped(self, small_internet_matrix):
        ids = list(range(40))
        overlay = MeridianOverlay(
            small_internet_matrix,
            ids,
            MeridianConfig(),
            rng=0,
            membership_sample_size=10,
        )
        for node_id in ids:
            assert len(overlay.node(node_id).members()) <= 10

    def test_excluded_edges_not_used(self, small_internet_matrix):
        ids = list(range(10))
        excluded = {(0, j) for j in range(1, 10)}
        overlay = MeridianOverlay(
            small_internet_matrix,
            ids,
            rng=0,
            full_membership=True,
            excluded_edges=excluded,
        )
        assert overlay.node(0).members() == []

    def test_node_lookup_unknown_raises(self, small_internet_matrix):
        overlay = MeridianOverlay(small_internet_matrix, [0, 1, 2], rng=0)
        with pytest.raises(MeridianError):
            overlay.node(50)

    def test_ring_occupancy_report(self, small_internet_matrix):
        overlay = MeridianOverlay(small_internet_matrix, list(range(8)), rng=0, full_membership=True)
        occupancy = overlay.ring_occupancy()
        assert set(occupancy) == set(range(8))
        assert all(sum(rings) == 7 for rings in occupancy.values())

    def test_true_closest(self, small_internet_matrix):
        overlay = MeridianOverlay(small_internet_matrix, list(range(20)), rng=0)
        target = 30
        node, delay = overlay.true_closest(target)
        measured = small_internet_matrix.values[list(range(20)), target]
        assert delay == pytest.approx(np.nanmin(measured))


class TestFig12Scenario:
    def test_tiv_misleads_meridian(self):
        matrix = fig12_matrix()
        overlay = MeridianOverlay(
            matrix, [0, 1, 2], MeridianConfig(beta=0.5), rng=0, full_membership=True
        )
        result = overlay.closest_neighbor_query(3, start_node=0)
        # Meridian ends at B even though N (delay 1) is the true closest.
        assert result.selected == 1
        assert result.optimal == 2
        assert result.optimal_delay == 1.0
        assert result.percentage_penalty == pytest.approx(300.0)
        assert not result.found_optimal
        assert result.hops[0] == 0

    def test_starting_elsewhere_can_succeed(self):
        matrix = fig12_matrix()
        overlay = MeridianOverlay(
            matrix, [0, 1, 2], MeridianConfig(beta=0.5), rng=0, full_membership=True
        )
        result = overlay.closest_neighbor_query(3, start_node=2)
        # Starting at N itself trivially finds N.
        assert result.selected == 2
        assert result.found_optimal


class TestQueryBehaviour:
    def test_query_counts_probes(self, small_internet_matrix):
        overlay = MeridianOverlay(
            small_internet_matrix, list(range(20)), rng=1, full_membership=True
        )
        result = overlay.closest_neighbor_query(30, start_node=0)
        assert result.probes >= 1
        assert result.selected in range(20)
        assert result.selected_delay >= result.optimal_delay or result.found_optimal

    def test_invalid_target_raises(self, small_internet_matrix):
        overlay = MeridianOverlay(small_internet_matrix, [0, 1, 2], rng=0)
        with pytest.raises(MeridianError):
            overlay.closest_neighbor_query(1_000)

    def test_invalid_start_raises(self, small_internet_matrix):
        overlay = MeridianOverlay(small_internet_matrix, [0, 1, 2], rng=0)
        with pytest.raises(MeridianError):
            overlay.closest_neighbor_query(5, start_node=7)

    def test_random_start_used_when_omitted(self, small_internet_matrix):
        overlay = MeridianOverlay(small_internet_matrix, list(range(10)), rng=2)
        result = overlay.closest_neighbor_query(20)
        assert result.hops[0] in range(10)

    def test_no_termination_does_not_stop_early(self, small_internet_matrix):
        ids = list(range(30))
        target = 60
        with_term = MeridianOverlay(
            small_internet_matrix, ids, MeridianConfig(use_termination=True), rng=3, full_membership=True
        ).closest_neighbor_query(target, start_node=ids[0])
        without_term = MeridianOverlay(
            small_internet_matrix, ids, MeridianConfig(use_termination=False), rng=3, full_membership=True
        ).closest_neighbor_query(target, start_node=ids[0])
        assert without_term.selected_delay <= with_term.selected_delay + 1e-9

    def test_euclidean_ideal_setting_finds_optimal(self, euclidean_matrix):
        """On TIV-free data with ideal settings Meridian should be near perfect."""
        ids = list(range(20))
        overlay = MeridianOverlay(
            euclidean_matrix,
            ids,
            MeridianConfig(use_termination=False),
            rng=4,
            full_membership=True,
        )
        outcomes = [
            overlay.closest_neighbor_query(t, start_node=ids[t % len(ids)])
            for t in range(20, 40)
        ]
        exact = sum(1 for o in outcomes if o.found_optimal)
        assert exact >= 18

    def test_restart_policy_invoked(self):
        matrix = fig12_matrix()
        overlay = MeridianOverlay(
            matrix, [0, 1, 2], MeridianConfig(beta=0.5), rng=0, full_membership=True
        )
        calls = []

        def restart(ov, current, target, delay):
            calls.append((current, target))
            return [2]  # force N to be probed

        result = overlay.closest_neighbor_query(3, start_node=0, restart_policy=restart)
        assert calls, "restart policy should be consulted when the query stalls"
        assert result.restarted
        assert result.selected == 2
        assert result.found_optimal

    def test_restart_policy_returning_none_keeps_result(self):
        matrix = fig12_matrix()
        overlay = MeridianOverlay(
            matrix, [0, 1, 2], MeridianConfig(beta=0.5), rng=0, full_membership=True
        )
        result = overlay.closest_neighbor_query(
            3, start_node=0, restart_policy=lambda *args: None
        )
        assert result.selected == 1
        assert not result.restarted


class TestDegenerateOverlays:
    """Edge cases: empty rings, all-excluded candidate sets, minimal overlays."""

    def test_single_node_overlay_rejected(self, small_internet_matrix):
        with pytest.raises(MeridianError):
            MeridianOverlay(small_internet_matrix, [5])

    def test_empty_iterable_rejected(self, small_internet_matrix):
        with pytest.raises(MeridianError):
            MeridianOverlay(small_internet_matrix, [])

    def test_all_edges_excluded_leaves_every_ring_empty(self, small_internet_matrix):
        # The §4.3 strawman taken to its limit: every candidate edge is
        # flagged as TIV and filtered, so no node can populate any ring.
        ids = list(range(6))
        excluded = {(i, j) for i in ids for j in ids if i < j}
        overlay = MeridianOverlay(
            small_internet_matrix,
            ids,
            rng=0,
            full_membership=True,
            excluded_edges=excluded,
        )
        for node_id in ids:
            assert overlay.node(node_id).members() == []
            assert overlay.node(node_id).eligible_members(10.0) == []
        assert all(sum(r) == 0 for r in overlay.ring_occupancy().values())

    def test_query_with_empty_rings_returns_start_node(self, small_internet_matrix):
        # With no ring members the query cannot forward anywhere: it must
        # terminate immediately at the start node after its single probe.
        ids = [0, 1, 2]
        excluded = {(0, 1), (0, 2), (1, 2)}
        overlay = MeridianOverlay(
            small_internet_matrix,
            ids,
            rng=0,
            full_membership=True,
            excluded_edges=excluded,
        )
        result = overlay.closest_neighbor_query(10, start_node=0)
        assert result.selected == 0
        assert result.probes == 1
        assert result.hops == [0]
        # The ground-truth optimum is still computed over all Meridian nodes.
        assert result.optimal in ids

    def test_unmeasured_edges_leave_rings_empty(self):
        # Missing measurements (nan) between the Meridian nodes must be
        # skipped during construction, not stored as members.
        delays = np.array(
            [
                [0.0, np.nan, 20.0],
                [np.nan, 0.0, 30.0],
                [20.0, 30.0, 0.0],
            ]
        )
        matrix = DelayMatrix(delays, symmetrize=False)
        overlay = MeridianOverlay(matrix, [0, 1], rng=0, full_membership=True)
        assert overlay.node(0).members() == []
        assert overlay.node(1).members() == []
        result = overlay.closest_neighbor_query(2, start_node=0)
        assert result.selected == 0
        assert result.selected_delay == 20.0

    def test_two_node_minimal_overlay_answers_queries(self, small_internet_matrix):
        overlay = MeridianOverlay(small_internet_matrix, [0, 1], rng=0, full_membership=True)
        result = overlay.closest_neighbor_query(40, start_node=0)
        assert result.selected in (0, 1)
        assert result.optimal in (0, 1)
        assert result.probes >= 1

    def test_target_with_no_measured_meridian_delay_raises(self):
        delays = np.array(
            [
                [0.0, 5.0, np.nan],
                [5.0, 0.0, np.nan],
                [np.nan, np.nan, 0.0],
            ]
        )
        matrix = DelayMatrix(delays, symmetrize=False)
        overlay = MeridianOverlay(matrix, [0, 1], rng=0, full_membership=True)
        with pytest.raises(MeridianError):
            overlay.true_closest(2)


class TestKernels:
    """Batched vs reference overlay kernels: exact equivalence.

    Unlike the embedding kernels, the Meridian switch only trades loop
    shape for array gathers — both kernels consume the RNG identically, so
    rings, member order and every query outcome must match bit for bit.
    """

    def test_unknown_kernel_raises(self, small_internet_matrix):
        with pytest.raises(MeridianError):
            MeridianOverlay(small_internet_matrix, [0, 1, 2], kernel="turbo")

    def test_kernel_property(self, small_internet_matrix):
        assert MeridianOverlay(small_internet_matrix, [0, 1], rng=0).kernel == "batched"
        assert (
            MeridianOverlay(small_internet_matrix, [0, 1], rng=0, kernel="reference").kernel
            == "reference"
        )

    @staticmethod
    def _assert_same_rings(a: MeridianOverlay, b: MeridianOverlay):
        assert a.meridian_ids == b.meridian_ids
        for node_id in a.meridian_ids:
            assert a.node(node_id).members() == b.node(node_id).members()
            for ring in range(a.config.n_rings):
                assert a.node(node_id).rings.ring_members(ring) == b.node(
                    node_id
                ).rings.ring_members(ring)

    @pytest.mark.parametrize("full_membership", [True, False])
    def test_identical_rings(self, small_internet_matrix, full_membership):
        overlays = [
            MeridianOverlay(
                small_internet_matrix,
                range(0, 80, 2),
                rng=5,
                full_membership=full_membership,
                membership_sample_size=12,
                kernel=kernel,
            )
            for kernel in ("batched", "reference")
        ]
        self._assert_same_rings(*overlays)

    def test_identical_rings_with_excluded_edges(self, small_internet_matrix):
        excluded = [(0, 2), (4, 6), (2, 10)]
        overlays = [
            MeridianOverlay(
                small_internet_matrix,
                range(0, 80, 4),
                rng=3,
                excluded_edges=excluded,
                kernel=kernel,
            )
            for kernel in ("batched", "reference")
        ]
        self._assert_same_rings(*overlays)

    def test_identical_rings_with_membership_adjuster(self, small_internet_matrix):
        # A membership adjuster forces the per-member build path under both
        # kernels; the batched overlay must still produce the same rings.
        adjuster = lambda owner, member, delay: delay * 2 if delay < 50 else None  # noqa: E731
        overlays = [
            MeridianOverlay(
                small_internet_matrix,
                range(0, 80, 4),
                rng=3,
                membership_adjuster=adjuster,
                kernel=kernel,
            )
            for kernel in ("batched", "reference")
        ]
        self._assert_same_rings(*overlays)

    def test_identical_query_results(self, small_internet_matrix):
        meridian_ids = list(range(0, 80, 2))
        overlays = {
            kernel: MeridianOverlay(
                small_internet_matrix, meridian_ids, rng=7, kernel=kernel
            )
            for kernel in ("batched", "reference")
        }
        targets = [node for node in range(80) if node % 2]
        for target in targets:
            start = meridian_ids[target % len(meridian_ids)]
            a = overlays["batched"].closest_neighbor_query(target, start_node=start)
            b = overlays["reference"].closest_neighbor_query(target, start_node=start)
            assert (a.selected, a.selected_delay) == (b.selected, b.selected_delay)
            assert (a.optimal, a.optimal_delay) == (b.optimal, b.optimal_delay)
            assert a.probes == b.probes
            assert a.hops == b.hops
            assert a.restarted == b.restarted

    def test_identical_true_closest(self, small_internet_matrix):
        overlays = [
            MeridianOverlay(small_internet_matrix, range(0, 80, 2), rng=1, kernel=kernel)
            for kernel in ("batched", "reference")
        ]
        for target in range(1, 80, 2):
            assert overlays[0].true_closest(target) == overlays[1].true_closest(target)

    def test_batched_true_closest_missing_delays_raise(self):
        delays = np.array(
            [
                [0.0, 5.0, np.nan],
                [5.0, 0.0, np.nan],
                [np.nan, np.nan, 0.0],
            ]
        )
        matrix = DelayMatrix(delays, symmetrize=False)
        overlay = MeridianOverlay(matrix, [0, 1], rng=0, kernel="batched")
        with pytest.raises(MeridianError):
            overlay.true_closest(2)
