"""Tests for repro.meridian.node."""

import math

import pytest

from repro.errors import MeridianError
from repro.meridian.node import MeridianNode
from repro.meridian.rings import MeridianConfig


class TestMeridianNode:
    def test_add_member(self):
        node = MeridianNode(0, MeridianConfig())
        assert node.add_member(3, 25.0)
        assert node.members() == [3]

    def test_self_member_raises(self):
        node = MeridianNode(0, MeridianConfig())
        with pytest.raises(MeridianError):
            node.add_member(0, 10.0)

    def test_populate_skips_unmeasurable(self):
        node = MeridianNode(0, MeridianConfig())
        delays = {1: 10.0, 2: float("nan"), 3: float("inf"), 4: 30.0}
        added = node.populate([1, 2, 3, 4, 0], lambda m: delays[m])
        assert added == 2
        assert set(node.members()) == {1, 4}

    def test_eligible_members_window(self):
        node = MeridianNode(0, MeridianConfig(beta=0.5))
        node.add_member(1, 40.0)
        node.add_member(2, 100.0)
        node.add_member(3, 160.0)
        node.add_member(4, 400.0)
        # target at 100 ms -> eligible window [50, 150]
        assert node.eligible_members(100.0) == [2]
        # target at 300 ms -> window [150, 450]
        assert set(node.eligible_members(300.0)) == {3, 4}

    def test_eligible_members_negative_delay_raises(self):
        node = MeridianNode(0, MeridianConfig())
        with pytest.raises(MeridianError):
            node.eligible_members(-1.0)

    def test_adjuster_double_places(self):
        node = MeridianNode(0, MeridianConfig())

        def adjuster(owner, member, delay):
            return 10.0 if member == 5 else None

        node.add_member(5, 300.0, adjuster=adjuster)
        node.add_member(6, 300.0, adjuster=adjuster)
        assert len(node.rings.ring_of(5)) == 2
        assert len(node.rings.ring_of(6)) == 1

    def test_repr(self):
        node = MeridianNode(2, MeridianConfig())
        assert "id=2" in repr(node)
        assert not math.isnan(len(node.members()) + 0.0)
