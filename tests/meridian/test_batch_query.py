"""The multi-query batch closest-neighbour search must mirror the scalar query."""

import numpy as np
import pytest

from repro.errors import MeridianError
from repro.meridian.overlay import MeridianOverlay
from repro.meridian.rings import MeridianConfig


def overlays(matrix, seed=0, **config_kwargs):
    """Two identically seeded overlays, one per query path under test."""
    ids = list(range(0, matrix.n_nodes, 2))
    config = MeridianConfig(**config_kwargs) if config_kwargs else None
    return (
        MeridianOverlay(matrix, ids, config, rng=seed),
        MeridianOverlay(matrix, ids, config, rng=seed),
    )


def assert_same_result(scalar, batch):
    assert scalar.target == batch.target
    assert scalar.selected == batch.selected
    assert scalar.selected_delay == batch.selected_delay
    assert scalar.optimal == batch.optimal
    assert scalar.probes == batch.probes
    assert scalar.hops == batch.hops


class TestBatchQueryEquivalence:
    @pytest.mark.parametrize("seed", [0, 5])
    def test_identical_to_sequential_scalar_queries(self, small_internet_matrix, seed):
        ov_scalar, ov_batch = overlays(small_internet_matrix, seed=seed)
        targets = [node for node in range(small_internet_matrix.n_nodes) if node % 2]
        starts = [ov_scalar.meridian_ids[t % 40] for t in targets]
        scalar = [
            ov_scalar.closest_neighbor_query(t, start_node=s)
            for t, s in zip(targets, starts)
        ]
        batch = ov_batch.closest_neighbor_query_batch(targets, start_nodes=starts)
        for s, b in zip(scalar, batch):
            assert_same_result(s, b)

    def test_random_starts_consume_the_rng_identically(self, small_internet_matrix):
        ov_scalar, ov_batch = overlays(small_internet_matrix, seed=3)
        targets = [1, 3, 5, 7, 9, 11]
        scalar = [ov_scalar.closest_neighbor_query(t) for t in targets]
        batch = ov_batch.closest_neighbor_query_batch(targets)
        for s, b in zip(scalar, batch):
            assert_same_result(s, b)

    def test_meridian_node_targets_supported(self, small_internet_matrix):
        # A Meridian node appearing as a target shows up in other nodes'
        # rings at delay 0 — the case the scalar path's self-delay caching
        # regression guarded against.
        ov_scalar, ov_batch = overlays(small_internet_matrix, seed=1)
        targets = [0, 2, 4, 6]
        starts = [ov_scalar.meridian_ids[-1]] * len(targets)
        scalar = [
            ov_scalar.closest_neighbor_query(t, start_node=s)
            for t, s in zip(targets, starts)
        ]
        batch = ov_batch.closest_neighbor_query_batch(targets, start_nodes=starts)
        for s, b in zip(scalar, batch):
            assert_same_result(s, b)

    def test_no_termination_window_matches_too(self, small_internet_matrix):
        ov_scalar, ov_batch = overlays(
            small_internet_matrix, seed=2, use_termination=False
        )
        targets = [1, 9, 17, 33]
        starts = [ov_scalar.meridian_ids[0]] * len(targets)
        scalar = [
            ov_scalar.closest_neighbor_query(t, start_node=s)
            for t, s in zip(targets, starts)
        ]
        batch = ov_batch.closest_neighbor_query_batch(targets, start_nodes=starts)
        for s, b in zip(scalar, batch):
            assert_same_result(s, b)

    def test_shared_ingress_batch(self, small_internet_matrix):
        # The serving workload's shape: one front-end node receives the
        # whole batch, so first-round gathers are genuinely shared.
        ov_scalar, ov_batch = overlays(small_internet_matrix, seed=4)
        targets = [node for node in range(1, 40, 2)]
        start = ov_scalar.meridian_ids[7]
        scalar = [
            ov_scalar.closest_neighbor_query(t, start_node=start) for t in targets
        ]
        batch = ov_batch.closest_neighbor_query_batch(
            targets, start_nodes=[start] * len(targets)
        )
        for s, b in zip(scalar, batch):
            assert_same_result(s, b)


class TestBatchQueryValidation:
    def test_empty_batch(self, small_internet_matrix):
        overlay, _ = overlays(small_internet_matrix)
        assert overlay.closest_neighbor_query_batch([]) == []

    def test_invalid_target_raises(self, small_internet_matrix):
        overlay, _ = overlays(small_internet_matrix)
        with pytest.raises(MeridianError, match="not in the delay matrix"):
            overlay.closest_neighbor_query_batch([1, 10_000])

    def test_invalid_start_raises(self, small_internet_matrix):
        overlay, _ = overlays(small_internet_matrix)
        with pytest.raises(MeridianError, match="not a Meridian node"):
            overlay.closest_neighbor_query_batch([1], start_nodes=[1])

    def test_mismatched_start_count_raises(self, small_internet_matrix):
        overlay, _ = overlays(small_internet_matrix)
        with pytest.raises(MeridianError, match="entries for"):
            overlay.closest_neighbor_query_batch([1, 3], start_nodes=[0])

    def test_results_are_never_restarted(self, small_internet_matrix):
        overlay, _ = overlays(small_internet_matrix)
        results = overlay.closest_neighbor_query_batch([1, 3, 5])
        assert all(not r.restarted for r in results)
        assert all(isinstance(r.selected_delay, float) for r in results)


class TestScalarMeridianTargetRegression:
    def test_query_survives_advancing_to_a_meridian_target(self):
        # Regression for the latent KeyError: a query whose target is a
        # Meridian node can advance *to the target* (its ring members see
        # it at delay 0); the hop loop then reads probed_delay[current].
        delays = np.array(
            [
                [0.0, 10.0, 50.0],
                [10.0, 0.0, 40.0],
                [50.0, 40.0, 0.0],
            ]
        )
        from repro.delayspace.matrix import DelayMatrix

        overlay = MeridianOverlay(
            DelayMatrix(delays), [0, 1, 2], rng=0, full_membership=True
        )
        result = overlay.closest_neighbor_query(0, start_node=2)
        assert result.target == 0
        assert result.selected != 0  # never the target itself
