"""Tests for repro.meridian.analysis."""

import numpy as np
import pytest

from repro.errors import MeridianError
from repro.meridian.analysis import ring_misplacement_by_delay


class TestRingMisplacement:
    def test_output_shapes(self, small_internet_matrix):
        centers, fraction, counts = ring_misplacement_by_delay(
            small_internet_matrix, beta=0.5, bin_width=50.0, max_pairs=5_000, rng=0
        )
        assert centers.shape == fraction.shape == counts.shape
        assert counts.sum() > 0

    def test_fraction_bounds(self, small_internet_matrix):
        _, fraction, _ = ring_misplacement_by_delay(
            small_internet_matrix, beta=0.5, max_pairs=5_000, rng=1
        )
        valid = fraction[~np.isnan(fraction)]
        assert np.all(valid >= 0.0)
        assert np.all(valid <= 1.0)

    def test_euclidean_matrix_has_no_misplacement(self, euclidean_matrix):
        _, fraction, counts = ring_misplacement_by_delay(
            euclidean_matrix, beta=0.5, max_pairs=None
        )
        weighted = np.nansum(np.nan_to_num(fraction) * counts) / counts.sum()
        assert weighted == pytest.approx(0.0, abs=1e-12)

    def test_tiv_matrix_has_misplacement(self, small_internet_matrix):
        _, fraction, counts = ring_misplacement_by_delay(
            small_internet_matrix, beta=0.5, max_pairs=None
        )
        weighted = np.nansum(np.nan_to_num(fraction) * counts) / counts.sum()
        assert weighted > 0.0

    def test_larger_beta_reduces_misplacement(self, small_internet_matrix):
        def overall(beta):
            _, fraction, counts = ring_misplacement_by_delay(
                small_internet_matrix, beta=beta, max_pairs=None
            )
            return np.nansum(np.nan_to_num(fraction) * counts) / counts.sum()

        assert overall(0.9) <= overall(0.1) + 1e-9

    def test_invalid_beta_raises(self, small_internet_matrix):
        with pytest.raises(MeridianError):
            ring_misplacement_by_delay(small_internet_matrix, beta=1.5)

    def test_sampling_reproducible(self, small_internet_matrix):
        a = ring_misplacement_by_delay(small_internet_matrix, max_pairs=2_000, rng=7)
        b = ring_misplacement_by_delay(small_internet_matrix, max_pairs=2_000, rng=7)
        assert np.allclose(np.nan_to_num(a[1]), np.nan_to_num(b[1]))
