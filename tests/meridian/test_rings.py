"""Tests for repro.meridian.rings."""

import math

import numpy as np
import pytest

from repro.errors import MeridianError
from repro.meridian.rings import (
    MeridianConfig,
    RingSet,
    ring_bounds,
    ring_index,
    ring_indices,
)


class TestMeridianConfig:
    def test_defaults_match_paper(self):
        config = MeridianConfig()
        assert config.alpha == 1.0
        assert config.s == 2.0
        assert config.n_rings == 11
        assert config.k == 16
        assert config.beta == 0.5
        assert config.use_termination

    def test_validation(self):
        with pytest.raises(MeridianError):
            MeridianConfig(alpha=0)
        with pytest.raises(MeridianError):
            MeridianConfig(s=1.0)
        with pytest.raises(MeridianError):
            MeridianConfig(n_rings=0)
        with pytest.raises(MeridianError):
            MeridianConfig(k=0)
        with pytest.raises(MeridianError):
            MeridianConfig(beta=1.0)


class TestRingIndex:
    def test_innermost_ring(self):
        config = MeridianConfig()
        assert ring_index(0.0, config) == 0
        assert ring_index(1.0, config) == 0

    def test_exponential_growth(self):
        config = MeridianConfig()
        assert ring_index(1.5, config) == 1
        assert ring_index(3.0, config) == 2
        assert ring_index(5.0, config) == 3
        assert ring_index(100.0, config) == 7

    def test_clamped_to_last_ring(self):
        config = MeridianConfig(n_rings=5)
        assert ring_index(1e6, config) == 4

    def test_negative_raises(self):
        with pytest.raises(MeridianError):
            ring_index(-1.0, MeridianConfig())

    def test_consistent_with_bounds(self):
        config = MeridianConfig()
        for delay in (0.5, 2.0, 7.0, 40.0, 333.0, 900.0):
            idx = ring_index(delay, config)
            inner, outer = ring_bounds(idx, config)
            assert inner <= delay <= outer or (idx == 0 and delay <= outer)

    def test_bounds_cover_positive_axis(self):
        config = MeridianConfig()
        previous_outer = 0.0
        for idx in range(config.n_rings):
            inner, outer = ring_bounds(idx, config)
            assert inner == pytest.approx(previous_outer) or idx == 0
            previous_outer = outer
        assert math.isinf(previous_outer)

    def test_bounds_out_of_range_raise(self):
        with pytest.raises(MeridianError):
            ring_bounds(11, MeridianConfig())


class TestRingSet:
    def test_add_and_lookup(self):
        rings = RingSet(MeridianConfig())
        assert rings.add(7, 12.0)
        assert 7 in rings
        assert rings.member_delay(7) == 12.0
        assert len(rings) == 1

    def test_unknown_member_raises(self):
        rings = RingSet(MeridianConfig())
        with pytest.raises(MeridianError):
            rings.member_delay(3)

    def test_invalid_delay_raises(self):
        rings = RingSet(MeridianConfig())
        with pytest.raises(MeridianError):
            rings.add(1, float("nan"))
        with pytest.raises(MeridianError):
            rings.add(1, -2.0)

    def test_capacity_enforced(self):
        config = MeridianConfig(k=2)
        rings = RingSet(config)
        # All these delays fall in the same ring (delays 10..15 -> ring 4).
        assert rings.add(1, 10.0)
        assert rings.add(2, 11.0)
        assert not rings.add(3, 12.0)  # ring full
        assert 3 not in rings

    def test_members_within(self):
        rings = RingSet(MeridianConfig())
        rings.add(1, 5.0)
        rings.add(2, 50.0)
        rings.add(3, 500.0)
        assert rings.members_within(4.0, 60.0) == [1, 2]
        assert rings.members_within(100.0, 1000.0) == [3]
        assert rings.members_within(60.0, 40.0) == []

    def test_double_placement(self):
        config = MeridianConfig(k=4)
        rings = RingSet(config)
        rings.add(9, 200.0, also_at_delay=20.0)
        placed = rings.ring_of(9)
        assert len(placed) == 2
        assert ring_index(200.0, config) in placed
        assert ring_index(20.0, config) in placed

    def test_double_placement_same_ring_is_single(self):
        config = MeridianConfig()
        rings = RingSet(config)
        rings.add(9, 200.0, also_at_delay=210.0)
        assert len(rings.ring_of(9)) == 1

    def test_occupancy(self):
        rings = RingSet(MeridianConfig())
        rings.add(1, 5.0)
        rings.add(2, 6.0)
        occupancy = rings.occupancy()
        assert sum(occupancy) == 2
        assert len(occupancy) == 11


class TestRingIndices:
    """Vectorised ring assignment must match the scalar helper exactly."""

    def test_matches_scalar_on_random_and_boundary_delays(self):
        config = MeridianConfig()
        rng = np.random.default_rng(0)
        boundaries = config.alpha * config.s ** np.arange(config.n_rings + 1, dtype=float)
        delays = np.concatenate(
            [rng.uniform(0.0, 4000.0, 2000), [0.0, config.alpha], boundaries,
             np.nextafter(boundaries, np.inf), np.nextafter(boundaries[1:], 0.0)]
        )
        vectorised = ring_indices(delays, config)
        scalar = np.array([ring_index(float(d), config) for d in delays])
        assert np.array_equal(vectorised, scalar)

    def test_matches_scalar_for_non_default_geometry(self):
        config = MeridianConfig(alpha=2.5, s=3.0, n_rings=6)
        delays = np.linspace(0.0, 2500.0, 997)
        vectorised = ring_indices(delays, config)
        scalar = np.array([ring_index(float(d), config) for d in delays])
        assert np.array_equal(vectorised, scalar)

    def test_negative_delay_raises(self):
        with pytest.raises(MeridianError):
            ring_indices(np.array([1.0, -0.5]), MeridianConfig())


class TestBulkAdd:
    """RingSet.bulk_add must behave exactly like sequential add calls."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_equivalent_to_sequential_adds(self, seed):
        config = MeridianConfig(k=3, n_rings=5)
        rng = np.random.default_rng(seed)
        members = rng.permutation(200)[:120]
        delays = rng.uniform(0.0, 300.0, size=members.size)

        sequential = RingSet(config)
        for member, delay in zip(members, delays):
            sequential.add(int(member), float(delay))
        bulk = RingSet(config)
        added = bulk.bulk_add(members, delays)

        assert added == len(sequential)
        assert bulk.members() == sequential.members()  # incl. insertion order
        for index in range(config.n_rings):
            assert bulk.ring_members(index) == sequential.ring_members(index)

    def test_respects_existing_occupancy(self):
        config = MeridianConfig(k=2, n_rings=3, alpha=10.0, s=2.0)
        rings = RingSet(config)
        rings.add(99, 5.0)  # ring 0 now has one free slot
        added = rings.bulk_add(np.array([1, 2, 3]), np.array([4.0, 6.0, 7.0]))
        assert added == 1
        assert rings.members() == [99, 1]

    def test_rejects_invalid_input(self):
        rings = RingSet(MeridianConfig())
        with pytest.raises(MeridianError):
            rings.bulk_add(np.array([1, 2]), np.array([1.0]))
        with pytest.raises(MeridianError):
            rings.bulk_add(np.array([1, 2]), np.array([1.0, -2.0]))
        with pytest.raises(MeridianError):
            rings.bulk_add(np.array([1, 2]), np.array([1.0, np.inf]))
        with pytest.raises(MeridianError):
            rings.bulk_add(np.array([1, 1]), np.array([1.0, 2.0]))
        rings.add(7, 3.0)
        with pytest.raises(MeridianError):
            rings.bulk_add(np.array([7]), np.array([4.0]))

    def test_empty_bulk_add_is_a_noop(self):
        rings = RingSet(MeridianConfig())
        assert rings.bulk_add(np.array([], dtype=int), np.array([])) == 0
        assert len(rings) == 0
