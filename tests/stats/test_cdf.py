"""Tests for repro.stats.cdf."""

import numpy as np
import pytest

from repro.stats.cdf import ECDF


class TestECDFBasics:
    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            ECDF([])

    def test_all_nan_raises(self):
        with pytest.raises(ValueError):
            ECDF([np.nan, np.nan])

    def test_nan_values_dropped(self):
        cdf = ECDF([1.0, np.nan, 3.0])
        assert len(cdf) == 2

    def test_len(self):
        assert len(ECDF([1, 2, 3])) == 3

    def test_values_sorted(self):
        cdf = ECDF([3, 1, 2])
        assert np.array_equal(cdf.values, [1, 2, 3])


class TestECDFEvaluation:
    def test_scalar_evaluation(self):
        cdf = ECDF([1, 2, 3, 4])
        assert cdf(2) == pytest.approx(0.5)
        assert cdf(0) == 0.0
        assert cdf(4) == 1.0

    def test_array_evaluation(self):
        cdf = ECDF([1, 2, 3, 4])
        result = cdf(np.array([0.5, 2.5, 10.0]))
        assert np.allclose(result, [0.0, 0.5, 1.0])

    def test_median_and_mean(self):
        cdf = ECDF([1, 2, 3, 4, 100])
        assert cdf.median == 3
        assert cdf.mean == pytest.approx(22.0)

    def test_quantile_bounds(self):
        cdf = ECDF([5, 10])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_quantile_scalar_and_array(self):
        cdf = ECDF(range(101))
        assert cdf.quantile(0.5) == pytest.approx(50)
        qs = cdf.quantile([0.1, 0.9])
        assert np.allclose(qs, [10, 90])

    def test_fraction_above(self):
        cdf = ECDF([1, 2, 3, 4])
        assert cdf.fraction_above(2) == pytest.approx(0.5)
        assert cdf.fraction_at_most(2) == pytest.approx(0.5)


class TestECDFCurveAndDescribe:
    def test_curve_is_monotone(self):
        cdf = ECDF(np.random.default_rng(0).normal(size=200))
        xs, ys = cdf.curve(points=50)
        assert xs.size == 50
        assert np.all(np.diff(ys) >= 0)
        assert ys[-1] == pytest.approx(1.0)

    def test_curve_degenerate_sample(self):
        xs, ys = ECDF([2.0, 2.0]).curve()
        assert np.all(ys == 1.0)

    def test_curve_requires_two_points(self):
        with pytest.raises(ValueError):
            ECDF([1, 2]).curve(points=1)

    def test_describe_keys(self):
        info = ECDF([1, 2, 3]).describe()
        assert set(info) == {"count", "mean", "median", "p10", "p90", "min", "max"}
        assert info["count"] == 3
