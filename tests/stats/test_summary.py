"""Tests for repro.stats.summary."""

import numpy as np
import pytest

from repro.stats.summary import (
    absolute_errors,
    median_absolute_error,
    percentile_summary,
    relative_errors,
)


def _example_pair():
    measured = np.array(
        [
            [0.0, 10.0, 20.0],
            [10.0, 0.0, 30.0],
            [20.0, 30.0, 0.0],
        ]
    )
    predicted = np.array(
        [
            [0.0, 12.0, 18.0],
            [12.0, 0.0, 33.0],
            [18.0, 33.0, 0.0],
        ]
    )
    return measured, predicted


class TestAbsoluteErrors:
    def test_upper_triangle_count(self):
        measured, predicted = _example_pair()
        errors = absolute_errors(measured, predicted)
        assert errors.size == 3
        assert sorted(errors.tolist()) == [2.0, 2.0, 3.0]

    def test_full_matrix_doubles(self):
        measured, predicted = _example_pair()
        errors = absolute_errors(measured, predicted, upper_only=False)
        assert errors.size == 6

    def test_missing_entries_skipped(self):
        measured, predicted = _example_pair()
        measured[0, 1] = measured[1, 0] = np.nan
        errors = absolute_errors(measured, predicted)
        assert errors.size == 2

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            absolute_errors(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            absolute_errors(np.zeros((2, 3)), np.zeros((2, 3)))


class TestRelativeAndMedian:
    def test_relative_errors(self):
        measured, predicted = _example_pair()
        rel = relative_errors(measured, predicted)
        assert rel.max() == pytest.approx(0.2)

    def test_median_absolute_error(self):
        measured, predicted = _example_pair()
        assert median_absolute_error(measured, predicted) == pytest.approx(2.0)

    def test_median_empty_raises(self):
        measured = np.full((2, 2), np.nan)
        np.fill_diagonal(measured, 0)
        with pytest.raises(ValueError):
            median_absolute_error(measured, measured)


class TestPercentileSummary:
    def test_keys_and_values(self):
        summary = percentile_summary(np.arange(101), percentiles=(10, 50, 90))
        assert summary == {"p10": 10.0, "p50": 50.0, "p90": 90.0}

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile_summary(np.array([]))

    def test_nan_filtered(self):
        summary = percentile_summary(np.array([1.0, np.nan, 3.0]), percentiles=(50,))
        assert summary["p50"] == pytest.approx(2.0)
