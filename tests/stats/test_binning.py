"""Tests for repro.stats.binning."""

import numpy as np
import pytest

from repro.stats.binning import bin_by_value


class TestBinByValueValidation:
    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            bin_by_value([1, 2], [1], bin_width=1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bin_by_value([], [], bin_width=1.0)

    def test_nonpositive_width_raises(self):
        with pytest.raises(ValueError):
            bin_by_value([1], [1], bin_width=0)

    def test_all_nonfinite_raises(self):
        with pytest.raises(ValueError):
            bin_by_value([np.nan], [np.nan], bin_width=1.0)


class TestBinByValueStats:
    def test_counts_partition_samples(self):
        x = np.array([1, 2, 11, 12, 25])
        stats = bin_by_value(x, x, bin_width=10.0)
        assert stats.counts.sum() == 5
        assert stats.counts.tolist() == [2, 2, 1]

    def test_median_per_bin(self):
        x = [5, 5, 5, 15, 15]
        y = [1, 2, 3, 10, 20]
        stats = bin_by_value(x, y, bin_width=10.0)
        assert stats.median[0] == pytest.approx(2.0)
        assert stats.median[1] == pytest.approx(15.0)

    def test_percentile_ordering(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 100, size=500)
        y = rng.uniform(0, 10, size=500)
        stats = bin_by_value(x, y, bin_width=10.0)
        mask = stats.counts > 0
        assert np.all(stats.p10[mask] <= stats.median[mask] + 1e-12)
        assert np.all(stats.median[mask] <= stats.p90[mask] + 1e-12)

    def test_empty_bins_are_nan(self):
        stats = bin_by_value([5, 35], [1, 2], bin_width=10.0)
        assert np.isnan(stats.median[1])
        assert stats.counts[1] == 0

    def test_x_max_override_extends_bins(self):
        stats = bin_by_value([1, 2], [1, 1], bin_width=10.0, x_max=50.0)
        assert stats.n_bins == 5

    def test_out_of_range_samples_dropped(self):
        stats = bin_by_value([5, 500], [1, 99], bin_width=10.0, x_max=20.0)
        assert stats.counts.sum() == 1

    def test_bin_centers_match_edges(self):
        stats = bin_by_value([1, 11], [0, 0], bin_width=10.0)
        assert np.allclose(stats.bin_centers, (stats.bin_edges[:-1] + stats.bin_edges[1:]) / 2)

    def test_nonempty_filters(self):
        stats = bin_by_value([5, 35], [1, 2], bin_width=10.0)
        filtered = stats.nonempty()
        assert filtered.counts.tolist() == [1, 1]
        assert filtered.bin_centers.size == 2

    def test_as_dict_roundtrip(self):
        stats = bin_by_value([5, 15], [1, 2], bin_width=10.0)
        d = stats.as_dict()
        assert set(d) == {"bin_centers", "counts", "p10", "median", "p90"}
        assert len(d["median"]) == stats.n_bins
