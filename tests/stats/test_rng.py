"""Tests for repro.stats.rng."""

import numpy as np
import pytest

from repro.stats.rng import ensure_rng, random_subset, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = ensure_rng(42).integers(0, 1000, size=10)
        b = ensure_rng(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(5)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_seed(self):
        gen = ensure_rng(np.int64(7))
        assert isinstance(gen, np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_differ(self):
        children = spawn_rngs(0, 2)
        a = children[0].integers(0, 10**6, size=20)
        b = children[1].integers(0, 10**6, size=20)
        assert not np.array_equal(a, b)

    def test_reproducible_from_seed(self):
        first = [g.integers(0, 10**6) for g in spawn_rngs(9, 3)]
        second = [g.integers(0, 10**6) for g in spawn_rngs(9, 3)]
        assert first == second

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []


class TestRandomSubset:
    def test_size_and_uniqueness(self):
        subset = random_subset(1, population=50, size=10)
        assert subset.size == 10
        assert len(set(subset.tolist())) == 10

    def test_exclusion_respected(self):
        subset = random_subset(2, population=10, size=5, exclude=[0, 1, 2])
        assert not set(subset.tolist()) & {0, 1, 2}

    def test_too_large_raises(self):
        with pytest.raises(ValueError):
            random_subset(3, population=5, size=6)

    def test_exclusion_shrinks_pool(self):
        with pytest.raises(ValueError):
            random_subset(4, population=5, size=4, exclude=[0, 1])
