"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def capture_help(capsys, monkeypatch, *argv):
    """The --help text of one (sub)command, at a pinned terminal width."""
    monkeypatch.setenv("COLUMNS", "80")
    with pytest.raises(SystemExit) as excinfo:
        main([*argv, "--help"])
    assert excinfo.value.code == 0
    return capsys.readouterr().out


class TestDatasetsCommand:
    def test_lists_presets(self, capsys):
        code, out, _ = run_cli(capsys, "datasets")
        assert code == 0
        rows = json.loads(out)
        names = {row["name"] for row in rows}
        assert {"ds2_like", "euclidean_like"} <= names
        assert all("description" in row for row in rows)


class TestGenerateAndAnalyze:
    def test_generate_writes_npz(self, capsys, tmp_path):
        target = tmp_path / "matrix.npz"
        code, out, _ = run_cli(
            capsys, "generate", "planetlab_like", "-o", str(target), "--nodes", "40"
        )
        assert code == 0
        assert target.exists()
        assert "40-node" in out

    def test_analyze_preset(self, capsys):
        code, out, _ = run_cli(capsys, "analyze", "--preset", "ds2_like", "--nodes", "50")
        assert code == 0
        payload = json.loads(out)
        assert payload["n_nodes"] == 50
        assert 0 <= payload["violating_triangle_fraction"] <= 1
        assert payload["severity"]["edges"] > 0

    def test_analyze_from_file(self, capsys, tmp_path):
        target = tmp_path / "matrix.npz"
        run_cli(capsys, "generate", "p2psim_like", "-o", str(target), "--nodes", "30")
        code, out, _ = run_cli(capsys, "analyze", "--input", str(target))
        assert code == 0
        assert json.loads(out)["n_nodes"] == 30

    def test_analyze_missing_file_fails_cleanly(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "analyze", "--input", str(tmp_path / "nope.npz"))
        assert code == 1
        assert "error" in err


class TestExperimentsCommands:
    def test_list_experiments(self, capsys):
        code, out, _ = run_cli(capsys, "experiments")
        assert code == 0
        ids = json.loads(out)
        assert "fig20" in ids and "fig25" in ids

    def test_run_experiment_scalar_output(self, capsys):
        code, out, _ = run_cli(capsys, "run", "fig19", "--nodes", "60", "--seed", "1")
        assert code == 0
        payload = json.loads(out)
        assert payload["experiment"] == "fig19"
        assert "median_severity_shrunk" in payload["data"]

    def test_run_unknown_experiment_fails_cleanly(self, capsys):
        code, _, err = run_cli(capsys, "run", "fig99")
        assert code == 1
        assert "unknown experiment" in err

    def test_run_full_payload(self, capsys):
        code, out, _ = run_cli(capsys, "run", "fig09", "--nodes", "60", "--full")
        assert code == 0
        payload = json.loads(out)
        assert "datasets" in payload["data"]

    def test_report_to_stdout(self, capsys):
        code, out, _ = run_cli(
            capsys, "report", "--nodes", "60", "--only", "fig19", "fig09"
        )
        assert code == 0
        assert "# Regenerated experiment results" in out
        assert "## fig19" in out

    def test_report_to_file(self, capsys, tmp_path):
        target = tmp_path / "report.md"
        code, out, _ = run_cli(
            capsys, "report", "--nodes", "60", "--only", "fig09", "-o", str(target)
        )
        assert code == 0
        assert target.exists()
        assert "## fig09" in target.read_text()


class TestRunAllCommand:
    def test_run_all_subset_prints_report(self, capsys):
        code, out, _ = run_cli(
            capsys, "run-all", "--nodes", "48", "--only", "fig03", "fig08"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["schema"] == "bench-experiments/v1"
        assert [entry["id"] for entry in payload["experiments"]] == ["fig03", "fig08"]
        assert payload["totals"]["experiments"] == 2

    def test_run_all_cached_second_pass_all_hits(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "artifacts")
        report_path = str(tmp_path / "BENCH_experiments.json")
        args = (
            "run-all", "--nodes", "48", "--jobs", "2",
            "--only", "fig03", "fig08",
            "--cache-dir", cache_dir, "--report", report_path,
        )
        code, _, _ = run_cli(capsys, *args)
        assert code == 0
        code, _, _ = run_cli(capsys, *args)
        assert code == 0
        payload = json.loads(open(report_path, encoding="utf-8").read())
        assert payload["totals"]["cache"]["misses"] == 0
        assert payload["totals"]["cache"]["hits"] > 0
        assert payload["totals"]["all_cache_hits"] is True

    def test_run_all_full_includes_scalar_results(self, capsys):
        code, out, _ = run_cli(
            capsys, "run-all", "--nodes", "48", "--only", "fig03", "--full"
        )
        assert code == 0
        payload = json.loads(out)
        assert "report" in payload and "results" in payload
        assert "fig03" in payload["results"]

    def test_run_all_unknown_experiment_fails_cleanly(self, capsys):
        code, _, err = run_cli(capsys, "run-all", "--only", "fig99")
        assert code == 1
        assert "unknown experiment" in err

    def test_run_all_only_without_ids_is_an_argparse_error(self, capsys):
        import pytest

        with pytest.raises(SystemExit) as excinfo:
            main(["run-all", "--only"])
        assert excinfo.value.code == 2


class TestScenarioCommands:
    def test_scenarios_lists_full_library_by_default(self, capsys):
        code, out, _ = run_cli(capsys, "scenarios")
        assert code == 0
        rows = json.loads(out)
        names = {row["name"] for row in rows}
        assert {"baseline", "tiv_free", "heavy_tiv", "asymmetric"} <= names

    def test_scenarios_matrix_flag_restricts_listing(self, capsys):
        code, out, _ = run_cli(capsys, "scenarios", "--matrix", "small")
        small = {row["name"] for row in json.loads(out)}
        assert code == 0
        code, out, _ = run_cli(capsys, "scenarios", "--matrix", "full")
        full = {row["name"] for row in json.loads(out)}
        assert code == 0
        assert small < full

    def test_scenarios_unknown_matrix_is_an_argparse_error(self, capsys):
        import pytest

        with pytest.raises(SystemExit):
            main(["scenarios", "--matrix", "huge"])

    def test_run_scenarios_matrix_and_only_wired_through(self, capsys, tmp_path):
        report_path = tmp_path / "BENCH_scenarios.json"
        code, out, _ = run_cli(
            capsys,
            "run-scenarios",
            "--matrix",
            "small",
            "--only",
            "fig03",
            "--nodes",
            "32",
            "--report",
            str(report_path),
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["matrix"] == "small"
        # --only reached every scenario's sweep...
        for row in payload["scenarios"]:
            assert [e["id"] for e in row["report"]["experiments"]] == ["fig03"]
        # ...and --nodes/--report were honoured.
        assert payload["config"]["n_nodes"] == 32
        assert report_path.exists()

    def test_run_scenarios_explicit_names_override_matrix(self, capsys):
        code, out, _ = run_cli(
            capsys,
            "run-scenarios",
            "--scenario",
            "tiv_free",
            "--only",
            "fig03",
            "--nodes",
            "32",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["matrix"] == "custom"
        assert [r["scenario"]["name"] for r in payload["scenarios"]] == ["tiv_free"]

    def test_run_with_unknown_scenario_fails_cleanly(self, capsys):
        code, _, err = run_cli(capsys, "run", "fig03", "--scenario", "not_real")
        assert code == 1
        assert "unknown scenario" in err


class TestGraphCommand:
    def test_graph_prints_waves_and_addresses(self, capsys):
        code, out, _ = run_cli(
            capsys, "graph", "--experiment", "fig19", "--nodes", "48"
        )
        assert code == 0
        assert "wave 0:" in out and "wave 1:" in out
        assert "dataset[ds2_like,48]" in out
        assert "vivaldi" in out and "alert" in out
        assert "cache=unknown" in out  # no --cache-dir given

    def test_graph_json_reports_cache_status(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        run_cli(
            capsys,
            "run-all",
            "--only",
            "fig03",
            "--nodes",
            "48",
            "--jobs",
            "1",
            "--cache-dir",
            str(cache_dir),
        )
        code, out, _ = run_cli(
            capsys,
            "graph",
            "--experiment",
            "fig03",
            "fig19",
            "--nodes",
            "48",
            "--cache-dir",
            str(cache_dir),
            "--json",
        )
        assert code == 0
        payload = json.loads(out)
        status = {row["artifact"]: row["cache"] for row in payload["artifacts"]}
        assert status["dataset[ds2_like,48]"] == "hit"
        assert status["clusters"] == "hit"
        assert status["vivaldi"] == "miss"  # fig19's chain was never warmed
        waves = {row["artifact"]: row["wave"] for row in payload["artifacts"]}
        assert waves["alert"] > waves["vivaldi"] > waves["dataset[ds2_like,48]"]
        assert all(len(row["address"]) == 32 for row in payload["artifacts"])

    def test_graph_scenario_changes_addresses(self, capsys):
        code, plain, _ = run_cli(
            capsys, "graph", "--experiment", "fig03", "--nodes", "48", "--json"
        )
        assert code == 0
        code, scoped, _ = run_cli(
            capsys,
            "graph",
            "--experiment",
            "fig03",
            "--nodes",
            "48",
            "--scenario",
            "heavy_tiv",
            "--json",
        )
        assert code == 0
        plain_addresses = {r["address"] for r in json.loads(plain)["artifacts"]}
        scoped_addresses = {r["address"] for r in json.loads(scoped)["artifacts"]}
        assert not plain_addresses & scoped_addresses

    def test_graph_unknown_experiment_fails_cleanly(self, capsys):
        code, _, err = run_cli(capsys, "graph", "--experiment", "fig99")
        assert code == 1
        assert "unknown experiments" in err


class TestStreamCommands:
    def make_trace(self, capsys, tmp_path, *extra):
        target = tmp_path / "trace.npz"
        code, out, _ = run_cli(
            capsys,
            "make-trace",
            "-o",
            str(target),
            "--nodes",
            "24",
            "--duration",
            "20",
            "--churn",
            "0.2",
            *extra,
        )
        assert code == 0
        assert target.exists()
        return target, out

    def test_make_trace_writes_and_summarises(self, capsys, tmp_path):
        target, out = self.make_trace(capsys, tmp_path)
        assert "24-node trace" in out
        assert "joins" in out and "leaves" in out

    def test_stream_replays_and_reports(self, capsys, tmp_path):
        target, _ = self.make_trace(capsys, tmp_path)
        report_path = tmp_path / "STREAM_report.json"
        code, out, err = run_cli(
            capsys,
            "stream",
            "--trace",
            str(target),
            "--window",
            "5",
            "--report",
            str(report_path),
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["schema"] == "stream-report/v1"
        assert payload["window_seconds"] == 5.0
        assert len(payload["windows"]) == 4
        assert payload["totals"]["final_active_nodes"] == 24
        assert payload["queries"]["closest"]
        assert "wrote stream report" in err
        on_disk = json.loads(report_path.read_text())
        assert on_disk["totals"] == payload["totals"]

    def test_stream_accuracy_improves_on_the_cli_path(self, capsys, tmp_path):
        target, _ = self.make_trace(capsys, tmp_path)
        code, out, _ = run_cli(capsys, "stream", "--trace", str(target))
        assert code == 0
        assert json.loads(out)["totals"]["accuracy_improved"] is True

    def test_stream_missing_trace_fails_cleanly(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, "stream", "--trace", str(tmp_path / "no.npz"))
        assert code == 1
        assert "not found" in err

    def test_make_trace_with_faults_summarises_the_spec(self, capsys, tmp_path):
        _, out = self.make_trace(capsys, tmp_path, "--faults", "liars=0.2,seed=1")
        assert "faults: liars=0.2" in out

    def test_make_trace_rejects_bad_fault_spec(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys,
            "make-trace",
            "-o",
            str(tmp_path / "t.npz"),
            "--faults",
            "teleport=1",
        )
        assert code == 1
        assert "teleport" in err

    def test_stream_kill_and_resume_matches_uninterrupted(self, capsys, tmp_path):
        target, _ = self.make_trace(capsys, tmp_path)
        ck = tmp_path / "ck.npz"
        wal = tmp_path / "wal.jsonl"
        durability = (
            "--defense",
            "--checkpoint",
            str(ck),
            "--wal",
            str(wal),
            "--checkpoint-every",
            "50",
        )
        code, out, _ = run_cli(capsys, "stream", "--trace", str(target), "--defense")
        assert code == 0
        uninterrupted = json.loads(out)["totals"]["state_fingerprint"]
        code, out, _ = run_cli(
            capsys, "stream", "--trace", str(target), *durability,
            "--stop-after", "100",
        )
        assert code == 0
        assert json.loads(out)["totals"]["stopped_after_events"] == 100
        code, out, _ = run_cli(
            capsys, "stream", "--trace", str(target), *durability, "--resume"
        )
        assert code == 0
        resumed = json.loads(out)["totals"]
        assert resumed["resumed_at_event"] == 100
        assert resumed["state_fingerprint"] == uninterrupted

    def test_stream_resume_without_checkpoint_fails_cleanly(self, capsys, tmp_path):
        target, _ = self.make_trace(capsys, tmp_path)
        code, _, err = run_cli(capsys, "stream", "--trace", str(target), "--resume")
        assert code == 1
        assert "resume" in err

    def test_chaos_reports_defended_vs_undefended(self, capsys, tmp_path):
        report_path = tmp_path / "CHAOS_report.json"
        code, out, err = run_cli(
            capsys,
            "chaos",
            "--nodes",
            "24",
            "--duration",
            "10",
            "--liar-fractions",
            "0.0,0.2",
            "--report",
            str(report_path),
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["schema"] == "chaos-report/v1"
        assert [row["liar_fraction"] for row in payload["rows"]] == [0.0, 0.2]
        for row in payload["rows"]:
            assert "degradation_vs_clean" in row["defended"]
            assert "degradation_vs_clean" in row["undefended"]
        assert "wrote chaos report" in err
        assert json.loads(report_path.read_text())["rows"] == payload["rows"]

    def test_chaos_rejects_bad_liar_fractions(self, capsys):
        code, _, err = run_cli(capsys, "chaos", "--liar-fractions", "abc")
        assert code == 1
        assert "liar-fractions" in err

    def test_make_trace_rejects_bad_churn(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys,
            "make-trace",
            "-o",
            str(tmp_path / "t.npz"),
            "--churn",
            "2.0",
        )
        assert code == 1
        assert "churn" in err


class TestHelpSnapshots:
    """The CLI surface is a contract: the command list, the new stream
    commands' usage and the shared parent-parser flags are pinned exactly
    (at an 80-column terminal)."""

    COMMAND_LIST = (
        "{datasets,generate,analyze,experiments,run,run-all,graph,cache,"
        "scenarios,run-scenarios,make-trace,stream,chaos,bench,serve-bench,"
        "perf-gate,report}"
    )

    MAKE_TRACE_USAGE = (
        "usage: repro make-trace [-h] [--nodes NODES] [--seed SEED]\n"
        "                        [--preset {ds2_like,euclidean_like,meridian_like,"
        "p2psim_like,planetlab_like,uniform_euclidean}]\n"
        "                        [--scenario SCENARIO] [--duration DURATION]\n"
        "                        [--rate RATE] [--churn CHURN] [--faults FAULTS]\n"
        "                        [--fault-seed FAULT_SEED] -o OUTPUT\n"
    )

    STREAM_USAGE = (
        "usage: repro stream [-h] [--report REPORT] --trace TRACE "
        "[--window WINDOW]\n"
        "                    [--alert-threshold ALERT_THRESHOLD] [--seed SEED]\n"
        "                    [--defense] [--checkpoint CHECKPOINT] [--wal WAL]\n"
        "                    [--checkpoint-every CHECKPOINT_EVERY] [--resume]\n"
        "                    [--stop-after STOP_AFTER]\n"
    )

    GRAPH_USAGE = (
        "usage: repro graph [-h] [--nodes NODES] [--seed SEED] "
        "[--memory-budget MIB]\n"
        "                   [--cache-dir CACHE_DIR]\n"
        "                   [--experiment EXPERIMENT [EXPERIMENT ...]]\n"
        "                   [--scenario SCENARIO] [--json]\n"
    )

    RUN_ALL_USAGE = (
        "usage: repro run-all [-h] [--nodes NODES] [--seed SEED] "
        "[--memory-budget MIB]\n"
        "                     [--jobs JOBS] [--cache-dir CACHE_DIR] "
        "[--report REPORT]\n"
        "                     [--only ONLY [ONLY ...]] [--no-shm] "
        "[--scenario SCENARIO]\n"
        "                     [--full]\n"
    )

    def test_top_level_command_list_pinned(self, capsys, monkeypatch):
        out = capture_help(capsys, monkeypatch)
        assert self.COMMAND_LIST in out.replace("\n             ", "")

    def test_make_trace_usage_pinned(self, capsys, monkeypatch):
        out = capture_help(capsys, monkeypatch, "make-trace")
        assert out.startswith(self.MAKE_TRACE_USAGE)

    def test_stream_usage_pinned(self, capsys, monkeypatch):
        out = capture_help(capsys, monkeypatch, "stream")
        assert out.startswith(self.STREAM_USAGE)

    def test_run_all_usage_pinned(self, capsys, monkeypatch):
        out = capture_help(capsys, monkeypatch, "run-all")
        assert out.startswith(self.RUN_ALL_USAGE)

    def test_graph_usage_pinned(self, capsys, monkeypatch):
        out = capture_help(capsys, monkeypatch, "graph")
        assert out.startswith(self.GRAPH_USAGE)

    @staticmethod
    def option_help(text, flag):
        """The help paragraph of one option in a --help dump."""
        lines = text.splitlines()
        start = next(
            i for i, line in enumerate(lines) if line.lstrip().startswith(flag)
        )
        block = [lines[start]]
        for line in lines[start + 1 :]:
            if line.startswith("                    ") and not line.lstrip().startswith("--"):
                block.append(line)
            else:
                break
        # Collapse the column padding: argparse aligns the help column per
        # subparser, so only the words are comparable across commands.
        return " ".join(" ".join(block).split())

    def test_shared_flags_render_identically_everywhere(self, capsys, monkeypatch):
        """The parent parsers are the single source of each shared flag:
        every subcommand using --jobs/--cache-dir/--nodes must show the
        byte-identical help text."""
        helps = {
            command: capture_help(capsys, monkeypatch, *command.split())
            for command in (
                "run-all",
                "run-scenarios",
                "graph",
                "cache prune",
                "run",
                "report",
            )
        }
        for flag, commands in (
            ("--jobs", ("run-all", "run-scenarios")),
            ("--cache-dir", ("run-all", "run-scenarios", "graph", "cache prune")),
            ("--nodes", ("run-all", "run-scenarios", "graph", "run", "report")),
            ("--seed", ("run-all", "run-scenarios", "graph", "run", "report")),
            ("--only", ("run-all", "run-scenarios", "report")),
            ("--no-shm", ("run-all", "run-scenarios")),
        ):
            rendered = {self.option_help(helps[c], flag) for c in commands}
            assert len(rendered) == 1, f"{flag} help text diverged: {rendered}"

    def test_report_flag_names_the_per_command_artifact(self, capsys, monkeypatch):
        # --report shares one template but names each command's artifact.
        for command, artifact in (
            ("run-all", "BENCH_experiments.json"),
            ("run-scenarios", "BENCH_scenarios.json"),
            ("bench", "BENCH_perf.json"),
            ("serve-bench", "BENCH_serving.json"),
            ("stream", "STREAM_report.json"),
        ):
            out = capture_help(capsys, monkeypatch, command)
            assert artifact in self.option_help(out, "--report")


class TestCachePruneCommand:
    def test_prune_removes_stale_entries_and_keeps_live_ones(self, capsys, tmp_path):
        import numpy as np

        from repro.experiments.cache import ArtifactCache

        cache_dir = tmp_path / "cache"
        run_cli(
            capsys,
            "run-all",
            "--only",
            "fig03",
            "--nodes",
            "48",
            "--jobs",
            "1",
            "--cache-dir",
            str(cache_dir),
        )
        # A pre-kernel-era vivaldi entry that current code can never hit.
        ArtifactCache(cache_dir).store(
            "vivaldi",
            {"preset": "ds2_like", "n_nodes": 48, "seed": 0, "vivaldi_seconds": 8},
            {"coordinates": np.zeros((48, 3))},
        )
        code, out, err = run_cli(
            capsys, "cache", "prune", "--cache-dir", str(cache_dir), "--dry-run"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["pruned"] == 1 and payload["dry_run"]
        assert "dry run" in err

        code, out, err = run_cli(
            capsys, "cache", "prune", "--cache-dir", str(cache_dir)
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["pruned"] == 1
        assert "pre-'kernel'-era" in payload["entries"][0]["reason"]
        assert "pruned 1" in err
        # The live entries still hit: a warm rerun misses nothing.
        code, out, _ = run_cli(
            capsys,
            "run-all",
            "--only",
            "fig03",
            "--nodes",
            "48",
            "--jobs",
            "1",
            "--cache-dir",
            str(cache_dir),
        )
        assert code == 0
        assert json.loads(out)["totals"]["all_cache_hits"]
