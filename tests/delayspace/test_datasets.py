"""Tests for repro.delayspace.datasets."""

import numpy as np
import pytest

from repro.delayspace.datasets import available_datasets, get_preset, load_dataset
from repro.errors import DatasetError
from repro.tiv.severity import violating_triangle_fraction


class TestRegistry:
    def test_expected_presets_present(self):
        names = available_datasets()
        for expected in (
            "ds2_like",
            "meridian_like",
            "p2psim_like",
            "planetlab_like",
            "euclidean_like",
            "uniform_euclidean",
        ):
            assert expected in names

    def test_get_preset_unknown_raises(self):
        with pytest.raises(DatasetError):
            get_preset("nope")

    def test_preset_metadata(self):
        preset = get_preset("ds2_like")
        assert preset.paper_nodes == 4000
        assert preset.default_nodes > 0
        assert "DS2" in preset.description


class TestLoadDataset:
    def test_default_size(self):
        matrix = load_dataset("planetlab_like")
        assert matrix.n_nodes == get_preset("planetlab_like").default_nodes

    def test_node_override(self):
        matrix = load_dataset("ds2_like", n_nodes=50, rng=0)
        assert matrix.n_nodes == 50

    def test_too_few_nodes_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("ds2_like", n_nodes=2)

    def test_unknown_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("unknown")

    def test_reproducible_default_seed(self):
        a = load_dataset("p2psim_like", n_nodes=40).values
        b = load_dataset("p2psim_like", n_nodes=40).values
        assert np.array_equal(a, b)

    def test_different_seed_differs(self):
        a = load_dataset("p2psim_like", n_nodes=40, rng=1).values
        b = load_dataset("p2psim_like", n_nodes=40, rng=2).values
        assert not np.array_equal(a, b)

    def test_euclidean_preset_has_no_tivs(self):
        matrix = load_dataset("euclidean_like", n_nodes=40, rng=0)
        assert violating_triangle_fraction(matrix) == pytest.approx(0.0, abs=1e-9)

    def test_uniform_euclidean_preset_has_no_tivs(self):
        matrix = load_dataset("uniform_euclidean", n_nodes=40, rng=0)
        assert violating_triangle_fraction(matrix) == pytest.approx(0.0, abs=1e-9)

    def test_internet_presets_have_tivs(self):
        for name in ("ds2_like", "meridian_like", "p2psim_like", "planetlab_like"):
            matrix = load_dataset(name, n_nodes=60, rng=0)
            assert violating_triangle_fraction(matrix) > 0.005, name

    def test_return_clusters_euclidean(self):
        matrix, clusters = load_dataset("uniform_euclidean", n_nodes=30, rng=0, return_clusters=True)
        assert clusters.shape == (30,)
        assert np.all(clusters == 0)

    def test_return_clusters_internet(self):
        matrix, clusters = load_dataset("ds2_like", n_nodes=60, rng=0, return_clusters=True)
        assert len(np.unique(clusters)) >= 3
