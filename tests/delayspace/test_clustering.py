"""Tests for repro.delayspace.clustering."""

import numpy as np
import pytest

from repro.delayspace.clustering import classify_major_clusters
from repro.delayspace.matrix import DelayMatrix
from repro.delayspace.synthetic import SyntheticSpaceConfig, clustered_delay_space
from repro.errors import ClusteringError


def _two_blob_matrix() -> DelayMatrix:
    """Two obvious clusters of 5 nodes each, 10 ms inside, 200 ms across."""
    n = 10
    delays = np.full((n, n), 200.0)
    for block in (range(0, 5), range(5, 10)):
        for i in block:
            for j in block:
                delays[i, j] = 0.0 if i == j else 10.0
    return DelayMatrix(delays, symmetrize=False)


class TestClassifyMajorClusters:
    def test_two_blobs_found(self):
        assignment = classify_major_clusters(_two_blob_matrix(), n_clusters=2, cluster_radius=50.0)
        assert assignment.n_clusters == 2
        sizes = assignment.sizes()
        assert sizes[:2] == [5, 5]
        assert sizes[2] == 0  # no noise

    def test_labels_partition_nodes(self):
        assignment = classify_major_clusters(_two_blob_matrix(), n_clusters=2, cluster_radius=50.0)
        assert assignment.labels.shape == (10,)
        assert set(assignment.labels.tolist()) == {0, 1}

    def test_members_and_noise_label(self):
        assignment = classify_major_clusters(_two_blob_matrix(), n_clusters=2, cluster_radius=50.0)
        assert assignment.noise_label == 2
        all_members = np.concatenate([assignment.members(0), assignment.members(1)])
        assert sorted(all_members.tolist()) == list(range(10))

    def test_members_out_of_range_raises(self):
        assignment = classify_major_clusters(_two_blob_matrix(), n_clusters=2, cluster_radius=50.0)
        with pytest.raises(ClusteringError):
            assignment.members(5)

    def test_reorder_indices_is_permutation(self):
        assignment = classify_major_clusters(_two_blob_matrix(), n_clusters=2, cluster_radius=50.0)
        order = assignment.reorder_indices()
        assert sorted(order.tolist()) == list(range(10))

    def test_reorder_groups_clusters_contiguously(self):
        assignment = classify_major_clusters(_two_blob_matrix(), n_clusters=2, cluster_radius=50.0)
        order = assignment.reorder_indices()
        labels_in_order = assignment.labels[order]
        # once the label changes it must not change back
        changes = np.count_nonzero(np.diff(labels_in_order) != 0)
        assert changes == 1

    def test_same_cluster_mask(self):
        assignment = classify_major_clusters(_two_blob_matrix(), n_clusters=2, cluster_radius=50.0)
        mask = assignment.same_cluster_mask()
        assert mask[0, 1]
        assert not mask[0, 9]

    def test_invalid_parameters(self):
        matrix = _two_blob_matrix()
        with pytest.raises(ClusteringError):
            classify_major_clusters(matrix, n_clusters=0)
        with pytest.raises(ClusteringError):
            classify_major_clusters(matrix, cluster_radius=-1.0)

    def test_labels_ordered_by_size(self):
        config = SyntheticSpaceConfig(n_nodes=90)
        matrix = clustered_delay_space(config, rng=0)
        assignment = classify_major_clusters(matrix, n_clusters=3)
        sizes = assignment.sizes()[: assignment.n_clusters]
        assert sizes == sorted(sizes, reverse=True)

    def test_recovers_synthetic_clusters_roughly(self):
        config = SyntheticSpaceConfig(n_nodes=90, tiv_edge_fraction=0.0, jitter_fraction=0.0)
        matrix, truth = clustered_delay_space(config, rng=1, return_clusters=True)
        assignment = classify_major_clusters(matrix, n_clusters=3, cluster_radius=60.0)
        # Most node pairs should agree on "same cluster or not".
        recovered_same = assignment.labels[:, None] == assignment.labels[None, :]
        truth_same = truth[:, None] == truth[None, :]
        iu = np.triu_indices(90, k=1)
        agreement = np.mean(recovered_same[iu] == truth_same[iu])
        assert agreement > 0.7

    def test_noise_cluster_when_radius_small(self):
        matrix = _two_blob_matrix()
        assignment = classify_major_clusters(matrix, n_clusters=1, cluster_radius=50.0)
        assert assignment.n_clusters == 1
        assert assignment.sizes()[-1] == 5  # second blob becomes noise
