"""Tests for repro.delayspace.io."""

import numpy as np
import pytest

from repro.delayspace.io import load_edge_list, load_npz, save_edge_list, save_npz
from repro.delayspace.matrix import DelayMatrix
from repro.errors import DelayMatrixError


@pytest.fixture
def sample_matrix() -> DelayMatrix:
    delays = np.array(
        [
            [0.0, 12.5, np.nan],
            [12.5, 0.0, 30.0],
            [np.nan, 30.0, 0.0],
        ]
    )
    return DelayMatrix(delays, labels=["a", "b", "c"], symmetrize=False)


class TestNpzRoundTrip:
    def test_roundtrip_preserves_delays_and_labels(self, sample_matrix, tmp_path):
        path = tmp_path / "matrix.npz"
        save_npz(sample_matrix, path)
        loaded = load_npz(path)
        assert loaded.labels == sample_matrix.labels
        a, b = loaded.values, sample_matrix.values
        assert np.allclose(np.nan_to_num(a, nan=-1), np.nan_to_num(b, nan=-1))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DelayMatrixError):
            load_npz(tmp_path / "nope.npz")

    def test_creates_parent_dirs(self, sample_matrix, tmp_path):
        path = tmp_path / "deep" / "dir" / "m.npz"
        save_npz(sample_matrix, path)
        assert path.exists()

    def test_wrong_archive_contents_raise(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(DelayMatrixError):
            load_npz(path)


class TestEdgeListRoundTrip:
    def test_roundtrip(self, sample_matrix, tmp_path):
        path = tmp_path / "edges.txt"
        save_edge_list(sample_matrix, path)
        loaded = load_edge_list(path)
        assert loaded.n_nodes == 3
        assert loaded.delay(0, 1) == pytest.approx(12.5)
        assert loaded.delay(1, 2) == pytest.approx(30.0)
        assert np.isnan(loaded.delay(0, 2))

    def test_header_skipped(self, sample_matrix, tmp_path):
        path = tmp_path / "edges.txt"
        save_edge_list(sample_matrix, path, header=True)
        first_line = path.read_text().splitlines()[0]
        assert first_line.startswith("#")
        assert load_edge_list(path).n_nodes == 3

    def test_explicit_node_count(self, sample_matrix, tmp_path):
        path = tmp_path / "edges.txt"
        save_edge_list(sample_matrix, path)
        loaded = load_edge_list(path, n_nodes=5)
        assert loaded.n_nodes == 5

    def test_node_count_too_small_raises(self, sample_matrix, tmp_path):
        path = tmp_path / "edges.txt"
        save_edge_list(sample_matrix, path)
        with pytest.raises(DelayMatrixError):
            load_edge_list(path, n_nodes=2)

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n")
        with pytest.raises(DelayMatrixError):
            load_edge_list(path)

    def test_negative_delay_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 -5\n")
        with pytest.raises(DelayMatrixError):
            load_edge_list(path)

    def test_negative_node_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("-1 1 5\n")
        with pytest.raises(DelayMatrixError):
            load_edge_list(path)

    def test_non_numeric_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b 5\n")
        with pytest.raises(DelayMatrixError):
            load_edge_list(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(DelayMatrixError):
            load_edge_list(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DelayMatrixError):
            load_edge_list(tmp_path / "nope.txt")
