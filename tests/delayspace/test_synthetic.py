"""Tests for repro.delayspace.synthetic."""

import numpy as np
import pytest

from repro.delayspace.synthetic import (
    ClusterSpec,
    SyntheticSpaceConfig,
    clustered_delay_space,
    euclidean_delay_space,
)
from repro.errors import ConfigError
from repro.tiv.severity import violating_triangle_fraction


class TestClusterSpec:
    def test_invalid_fraction(self):
        with pytest.raises(ConfigError):
            ClusterSpec("x", 0.0, (0, 0), 10.0)

    def test_invalid_radius(self):
        with pytest.raises(ConfigError):
            ClusterSpec("x", 0.5, (0, 0), 0.0)


class TestSyntheticSpaceConfig:
    def test_defaults_valid(self):
        assert SyntheticSpaceConfig().n_nodes == 400

    def test_fraction_sum_over_one(self):
        clusters = (
            ClusterSpec("a", 0.7, (0, 0), 10.0),
            ClusterSpec("b", 0.6, (50, 0), 10.0),
        )
        with pytest.raises(ConfigError):
            SyntheticSpaceConfig(clusters=clusters)

    def test_invalid_tiv_fraction(self):
        with pytest.raises(ConfigError):
            SyntheticSpaceConfig(tiv_edge_fraction=1.0)

    def test_invalid_inflation_shape(self):
        with pytest.raises(ConfigError):
            SyntheticSpaceConfig(inflation_shape=0.9)

    def test_too_few_nodes(self):
        with pytest.raises(ConfigError):
            SyntheticSpaceConfig(n_nodes=2)


class TestEuclideanDelaySpace:
    def test_shape_and_symmetry(self):
        matrix = euclidean_delay_space(20, rng=0)
        assert matrix.n_nodes == 20
        values = matrix.values
        assert np.allclose(values, values.T)

    def test_triangle_inequality_holds(self):
        matrix = euclidean_delay_space(25, rng=1, min_delay=0.0)
        assert violating_triangle_fraction(matrix) == 0.0

    def test_reproducible(self):
        a = euclidean_delay_space(10, rng=3).values
        b = euclidean_delay_space(10, rng=3).values
        assert np.array_equal(a, b)

    def test_min_delay_respected(self):
        matrix = euclidean_delay_space(10, rng=2, min_delay=5.0)
        assert matrix.edge_delays().min() >= 5.0

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            euclidean_delay_space(1)
        with pytest.raises(ConfigError):
            euclidean_delay_space(10, scale=0)


class TestClusteredDelaySpace:
    def test_basic_generation(self):
        config = SyntheticSpaceConfig(n_nodes=60)
        matrix = clustered_delay_space(config, rng=0)
        assert matrix.n_nodes == 60
        assert matrix.is_complete()
        assert matrix.edge_delays().min() >= config.min_delay

    def test_reproducible(self):
        config = SyntheticSpaceConfig(n_nodes=40)
        a = clustered_delay_space(config, rng=5).values
        b = clustered_delay_space(config, rng=5).values
        assert np.array_equal(a, b)

    def test_contains_tivs(self):
        config = SyntheticSpaceConfig(n_nodes=60, tiv_edge_fraction=0.3)
        matrix = clustered_delay_space(config, rng=1)
        assert violating_triangle_fraction(matrix) > 0.01

    def test_zero_tiv_fraction_is_nearly_metric(self):
        config = SyntheticSpaceConfig(
            n_nodes=50, tiv_edge_fraction=0.0, jitter_fraction=0.0
        )
        matrix = clustered_delay_space(config, rng=2)
        # Access delays preserve the metric property (they only add to both
        # sides of every triangle symmetrically through endpoints), so no
        # violations should appear without inflation or jitter.
        assert violating_triangle_fraction(matrix) == pytest.approx(0.0, abs=1e-6)

    def test_return_clusters(self):
        config = SyntheticSpaceConfig(n_nodes=50)
        matrix, clusters = clustered_delay_space(config, rng=3, return_clusters=True)
        assert clusters.shape == (50,)
        assert clusters.max() <= len(config.clusters)
        assert matrix.n_nodes == 50

    def test_cluster_structure_visible_in_delays(self):
        config = SyntheticSpaceConfig(n_nodes=80, tiv_edge_fraction=0.0, jitter_fraction=0.0)
        matrix, clusters = clustered_delay_space(config, rng=4, return_clusters=True)
        values = matrix.values
        same = clusters[:, None] == clusters[None, :]
        iu = np.triu_indices(80, k=1)
        within = values[iu][same[iu] & (clusters[iu[0]] < len(config.clusters))]
        across = values[iu][~same[iu]]
        assert within.mean() < across.mean()

    def test_missing_fraction_applied(self):
        config = SyntheticSpaceConfig(n_nodes=40, missing_fraction=0.1)
        matrix = clustered_delay_space(config, rng=6)
        assert 0.05 < matrix.missing_fraction() < 0.2

    def test_higher_tiv_fraction_more_violations(self):
        low = clustered_delay_space(
            SyntheticSpaceConfig(n_nodes=60, tiv_edge_fraction=0.05), rng=7
        )
        high = clustered_delay_space(
            SyntheticSpaceConfig(n_nodes=60, tiv_edge_fraction=0.45), rng=7
        )
        assert violating_triangle_fraction(high) > violating_triangle_fraction(low)


class TestAccessDelayDistribution:
    def test_invalid_distribution_rejected(self):
        with pytest.raises(ConfigError):
            SyntheticSpaceConfig(access_delay_distribution="uniform")

    def test_invalid_shape_rejected(self):
        with pytest.raises(ConfigError):
            SyntheticSpaceConfig(access_delay_distribution="pareto", access_delay_shape=1.0)

    def test_pareto_access_changes_the_matrix(self):
        exponential = clustered_delay_space(SyntheticSpaceConfig(n_nodes=40), rng=3)
        pareto = clustered_delay_space(
            SyntheticSpaceConfig(n_nodes=40, access_delay_distribution="pareto"), rng=3
        )
        assert not np.array_equal(exponential.values, pareto.values)

    def test_pareto_access_keeps_comparable_scale(self):
        # Both distributions are parameterised to the same mean, so the
        # typical delay level should not shift wildly, only the tail.
        exponential = clustered_delay_space(SyntheticSpaceConfig(n_nodes=60), rng=9)
        pareto = clustered_delay_space(
            SyntheticSpaceConfig(n_nodes=60, access_delay_distribution="pareto"), rng=9
        )
        ratio = np.nanmedian(pareto.values) / np.nanmedian(exponential.values)
        assert 0.5 < ratio < 2.0

    def test_default_distribution_stream_unchanged(self):
        # The knob's default must not perturb existing seeds: an explicitly
        # exponential config reproduces the pre-knob generation exactly.
        default = clustered_delay_space(SyntheticSpaceConfig(n_nodes=30), rng=1)
        explicit = clustered_delay_space(
            SyntheticSpaceConfig(n_nodes=30, access_delay_distribution="exponential"),
            rng=1,
        )
        assert np.array_equal(default.values, explicit.values)


class TestTivEdgeMask:
    def test_mask_shape_and_symmetry(self):
        config = SyntheticSpaceConfig(n_nodes=40, tiv_edge_fraction=0.2)
        matrix, mask = clustered_delay_space(config, rng=2, return_tiv_edges=True)
        assert mask.shape == (40, 40)
        assert mask.dtype == bool
        assert np.array_equal(mask, mask.T)
        assert not mask.diagonal().any()

    def test_mask_fraction_matches_request(self):
        n = 50
        config = SyntheticSpaceConfig(n_nodes=n, tiv_edge_fraction=0.25)
        _, mask = clustered_delay_space(config, rng=4, return_tiv_edges=True)
        iu = np.triu_indices(n, k=1)
        assert mask[iu].sum() == round(0.25 * iu[0].size)

    def test_zero_fraction_gives_empty_mask(self):
        config = SyntheticSpaceConfig(n_nodes=20, tiv_edge_fraction=0.0)
        _, mask = clustered_delay_space(config, rng=0, return_tiv_edges=True)
        assert not mask.any()

    def test_both_flags_return_clusters_then_mask(self):
        config = SyntheticSpaceConfig(n_nodes=20)
        matrix, clusters, mask = clustered_delay_space(
            config, rng=0, return_clusters=True, return_tiv_edges=True
        )
        assert clusters.shape == (20,)
        assert mask.shape == (20, 20)

    def test_mask_does_not_change_generation(self):
        config = SyntheticSpaceConfig(n_nodes=25)
        plain = clustered_delay_space(config, rng=6)
        with_mask, _ = clustered_delay_space(config, rng=6, return_tiv_edges=True)
        assert np.array_equal(plain.values, with_mask.values)
