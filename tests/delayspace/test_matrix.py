"""Tests for repro.delayspace.matrix."""

import numpy as np
import pytest

from repro.delayspace.matrix import DelayMatrix
from repro.errors import DelayMatrixError


def _simple_matrix() -> DelayMatrix:
    delays = np.array(
        [
            [0.0, 10.0, 20.0, 30.0],
            [10.0, 0.0, 15.0, np.nan],
            [20.0, 15.0, 0.0, 25.0],
            [30.0, np.nan, 25.0, 0.0],
        ]
    )
    return DelayMatrix(delays, symmetrize=False)


class TestConstruction:
    def test_non_square_raises(self):
        with pytest.raises(DelayMatrixError):
            DelayMatrix(np.zeros((2, 3)))

    def test_too_small_raises(self):
        with pytest.raises(DelayMatrixError):
            DelayMatrix(np.zeros((1, 1)))

    def test_negative_delay_raises(self):
        data = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(DelayMatrixError):
            DelayMatrix(data)

    def test_diagonal_forced_to_zero(self):
        data = np.array([[5.0, 1.0], [1.0, 5.0]])
        matrix = DelayMatrix(data)
        assert matrix.delay(0, 0) == 0.0

    def test_symmetrize_averages(self):
        data = np.array([[0.0, 10.0], [20.0, 0.0]])
        matrix = DelayMatrix(data, symmetrize=True)
        assert matrix.delay(0, 1) == pytest.approx(15.0)
        assert matrix.delay(1, 0) == pytest.approx(15.0)

    def test_symmetrize_uses_available_half(self):
        data = np.array([[0.0, np.nan], [20.0, 0.0]])
        matrix = DelayMatrix(data, symmetrize=True)
        assert matrix.delay(0, 1) == pytest.approx(20.0)

    def test_asymmetric_without_symmetrize_raises(self):
        data = np.array([[0.0, 10.0], [20.0, 0.0]])
        with pytest.raises(DelayMatrixError):
            DelayMatrix(data, symmetrize=False)

    def test_label_mismatch_raises(self):
        with pytest.raises(DelayMatrixError):
            DelayMatrix(np.zeros((2, 2)), labels=["only-one"])

    def test_default_labels(self):
        matrix = _simple_matrix()
        assert matrix.labels == ("0", "1", "2", "3")

    def test_repr_contains_size(self):
        assert "n_nodes=4" in repr(_simple_matrix())


class TestAccessors:
    def test_values_readonly(self):
        matrix = _simple_matrix()
        with pytest.raises(ValueError):
            matrix.values[0, 1] = 99.0

    def test_to_array_is_copy(self):
        matrix = _simple_matrix()
        arr = matrix.to_array()
        arr[0, 1] = 99.0
        assert matrix.delay(0, 1) == 10.0

    def test_getitem(self):
        assert _simple_matrix()[0, 2] == 20.0

    def test_out_of_range_raises(self):
        with pytest.raises(DelayMatrixError):
            _simple_matrix().delay(0, 10)

    def test_len(self):
        assert len(_simple_matrix()) == 4

    def test_missing_fraction(self):
        matrix = _simple_matrix()
        assert matrix.missing_fraction() == pytest.approx(2 / 12)
        assert not matrix.is_complete()

    def test_edge_delays_skip_missing(self):
        assert _simple_matrix().edge_delays().size == 5

    def test_edges_iterator(self):
        edges = list(_simple_matrix().edges())
        assert (0, 1, 10.0) in edges
        assert all(i < j for i, j, _ in edges)
        assert len(edges) == 5

    def test_edges_include_missing(self):
        edges = list(_simple_matrix().edges(include_missing=True))
        assert len(edges) == 6

    def test_mean_median_delay(self):
        matrix = _simple_matrix()
        assert matrix.mean_delay() == pytest.approx(np.mean([10, 20, 30, 15, 25]))
        assert matrix.median_delay() == pytest.approx(20.0)


class TestTransformations:
    def test_submatrix(self):
        sub = _simple_matrix().submatrix([0, 2, 3])
        assert sub.n_nodes == 3
        assert sub.delay(0, 1) == 20.0
        assert sub.labels == ("0", "2", "3")

    def test_submatrix_duplicates_raise(self):
        with pytest.raises(DelayMatrixError):
            _simple_matrix().submatrix([0, 0, 1])

    def test_submatrix_too_small_raises(self):
        with pytest.raises(DelayMatrixError):
            _simple_matrix().submatrix([1])

    def test_reordered_is_permutation(self):
        matrix = _simple_matrix()
        reordered = matrix.reordered([3, 2, 1, 0])
        assert reordered.delay(0, 3) == matrix.delay(3, 0)

    def test_reordered_invalid_raises(self):
        with pytest.raises(DelayMatrixError):
            _simple_matrix().reordered([0, 1, 2])

    def test_fill_missing_median(self):
        filled = _simple_matrix().with_filled_missing("median")
        assert filled.is_complete()
        assert filled.delay(1, 3) == pytest.approx(20.0)

    def test_fill_missing_max(self):
        filled = _simple_matrix().with_filled_missing("max")
        assert filled.delay(1, 3) == pytest.approx(30.0)

    def test_fill_missing_unknown_raises(self):
        with pytest.raises(DelayMatrixError):
            _simple_matrix().with_filled_missing("bogus")

    def test_fill_missing_noop_when_complete(self):
        complete = DelayMatrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        assert complete.with_filled_missing().is_complete()


class TestNeighborQueries:
    def test_nearest_neighbor(self):
        assert _simple_matrix().nearest_neighbor(0) == 1

    def test_nearest_neighbor_with_candidates(self):
        assert _simple_matrix().nearest_neighbor(0, candidates=[2, 3]) == 2

    def test_nearest_neighbor_skips_missing(self):
        assert _simple_matrix().nearest_neighbor(1, candidates=[3, 2]) == 2

    def test_nearest_neighbor_no_candidates_raises(self):
        with pytest.raises(DelayMatrixError):
            _simple_matrix().nearest_neighbor(0, candidates=[0])

    def test_k_nearest(self):
        assert _simple_matrix().k_nearest_neighbors(0, 2) == [1, 2]

    def test_k_nearest_invalid_k(self):
        with pytest.raises(DelayMatrixError):
            _simple_matrix().k_nearest_neighbors(0, 0)
