"""Tests for repro.delayspace.shortest_path."""

import numpy as np
import pytest

from repro.delayspace.matrix import DelayMatrix
from repro.delayspace.shortest_path import (
    detour_gains,
    shortest_path_lengths_for_edges,
    shortest_path_matrix,
)
from repro.errors import DelayMatrixError


def _tiv_matrix() -> DelayMatrix:
    delays = np.array(
        [
            [0.0, 5.0, 100.0],
            [5.0, 0.0, 5.0],
            [100.0, 5.0, 0.0],
        ]
    )
    return DelayMatrix(delays, symmetrize=False)


class TestShortestPathMatrix:
    def test_detour_shorter_than_direct(self):
        shortest = shortest_path_matrix(_tiv_matrix())
        assert shortest[0, 2] == pytest.approx(10.0)

    def test_diagonal_zero(self):
        shortest = shortest_path_matrix(_tiv_matrix())
        assert np.allclose(np.diag(shortest), 0.0)

    def test_never_longer_than_direct(self, small_internet_matrix):
        shortest = shortest_path_matrix(small_internet_matrix)
        values = small_internet_matrix.values
        finite = np.isfinite(values)
        assert np.all(shortest[finite] <= values[finite] + 1e-9)

    def test_symmetric(self, small_internet_matrix):
        shortest = shortest_path_matrix(small_internet_matrix)
        assert np.allclose(shortest, shortest.T)

    def test_disconnected_nodes_are_inf(self):
        delays = np.full((4, 4), np.nan)
        np.fill_diagonal(delays, 0.0)
        delays[0, 1] = delays[1, 0] = 5.0
        delays[2, 3] = delays[3, 2] = 7.0
        matrix = DelayMatrix(delays, symmetrize=False)
        shortest = shortest_path_matrix(matrix)
        assert np.isinf(shortest[0, 2])


class TestDetourGains:
    def test_gain_for_tiv_edge(self):
        gains = detour_gains(_tiv_matrix())
        assert gains.max() == pytest.approx(10.0)

    def test_gains_at_least_one(self, small_internet_matrix):
        gains = detour_gains(small_internet_matrix)
        assert np.all(gains >= 1.0 - 1e-9)

    def test_metric_matrix_has_unit_gains(self, euclidean_matrix):
        gains = detour_gains(euclidean_matrix)
        assert np.allclose(gains, 1.0)

    def test_shape_mismatch_raises(self, small_internet_matrix):
        with pytest.raises(DelayMatrixError):
            detour_gains(small_internet_matrix, shortest=np.zeros((3, 3)))

    def test_precomputed_shortest_used(self):
        matrix = _tiv_matrix()
        shortest = shortest_path_matrix(matrix)
        assert np.array_equal(detour_gains(matrix, shortest), detour_gains(matrix))


class TestEdgeLengths:
    def test_paired_outputs(self, small_internet_matrix):
        delays, shortest = shortest_path_lengths_for_edges(small_internet_matrix)
        assert delays.shape == shortest.shape
        assert np.all(shortest <= delays + 1e-9)


def _disconnected_matrix() -> DelayMatrix:
    """Two 2-node components with no measurement between them."""
    delays = np.full((4, 4), np.nan)
    np.fill_diagonal(delays, 0.0)
    delays[0, 1] = delays[1, 0] = 5.0
    delays[2, 3] = delays[3, 2] = 7.0
    return DelayMatrix(delays, symmetrize=False)


def _zero_edge_matrix() -> DelayMatrix:
    """Co-located nodes 0 and 1 (a measured zero-delay edge) plus a TIV."""
    delays = np.array(
        [
            [0.0, 0.0, 20.0, 90.0],
            [0.0, 0.0, 20.0, 90.0],
            [20.0, 20.0, 0.0, 10.0],
            [90.0, 90.0, 10.0, 0.0],
        ]
    )
    return DelayMatrix(delays, symmetrize=False)


class TestDisconnectedGraphs:
    def test_cross_component_paths_are_inf(self):
        shortest = shortest_path_matrix(_disconnected_matrix())
        for i in (0, 1):
            for j in (2, 3):
                assert np.isinf(shortest[i, j])
                assert np.isinf(shortest[j, i])

    def test_within_component_paths_are_finite(self):
        shortest = shortest_path_matrix(_disconnected_matrix())
        assert shortest[0, 1] == pytest.approx(5.0)
        assert shortest[2, 3] == pytest.approx(7.0)

    def test_detour_gains_only_cover_measured_edges(self):
        # Every measured edge is itself a path, so gains stay finite even
        # when the graph as a whole is disconnected.
        gains = detour_gains(_disconnected_matrix())
        assert gains.shape == (2,)
        assert np.all(np.isfinite(gains))
        assert np.allclose(gains, 1.0)

    def test_edge_lengths_finite_on_disconnected_graph(self):
        delays, shortest = shortest_path_lengths_for_edges(_disconnected_matrix())
        assert np.all(np.isfinite(delays))
        assert np.all(np.isfinite(shortest))


class TestZeroDelayEdges:
    def test_zero_edge_is_a_zero_length_path(self):
        # Regression guard: a dense csgraph conversion treats 0 as "no
        # edge" and would report a positive shortest path between the
        # co-located nodes.
        shortest = shortest_path_matrix(_zero_edge_matrix())
        assert shortest[0, 1] == 0.0

    def test_shortest_never_exceeds_direct_with_zero_edges(self):
        matrix = _zero_edge_matrix()
        shortest = shortest_path_matrix(matrix)
        values = matrix.values
        finite = np.isfinite(values)
        assert np.all(shortest[finite] <= values[finite] + 1e-9)

    def test_detour_gain_of_zero_edge_is_one(self):
        matrix = _zero_edge_matrix()
        gains = detour_gains(matrix)
        rows, cols = matrix.edge_index_pairs()
        zero_edge = np.flatnonzero((rows == 0) & (cols == 1))
        assert zero_edge.size == 1
        # direct == shortest == 0: no shorter detour exists, so the gain is
        # the neutral 1.0 rather than nan/inf.
        assert gains[zero_edge[0]] == pytest.approx(1.0)
        assert np.all(np.isfinite(gains))

    def test_zero_edge_still_detects_other_tivs(self):
        gains = detour_gains(_zero_edge_matrix())
        # Edge (0,3)/(1,3) at 90ms has a 30ms detour via node 2.
        assert gains.max() == pytest.approx(3.0)

    def test_positive_edge_with_zero_length_detour_has_infinite_gain(self):
        # Nodes 0, 1, 2, 3 are all pairwise co-located via zero-delay edges
        # (0-1, 1-2, 2-3), but the direct measurement 0-3 reads 50ms — so
        # the shortest path 0→2→3 is zero-length while the direct edge is
        # positive.
        delays = np.array(
            [
                [0.0, 0.0, 0.0, 50.0],
                [0.0, 0.0, 0.0, np.nan],
                [0.0, 0.0, 0.0, 0.0],
                [50.0, np.nan, 0.0, 0.0],
            ]
        )
        matrix = DelayMatrix(delays, symmetrize=False)
        shortest = shortest_path_matrix(matrix)
        assert shortest[0, 3] == 0.0
        gains = detour_gains(matrix, shortest)
        rows, cols = matrix.edge_index_pairs()
        idx = np.flatnonzero((rows == 0) & (cols == 3))
        assert idx.size == 1
        # A 50ms edge with a 0ms detour is an unboundedly severe violation,
        # not a neutral gain of 1.
        assert np.isinf(gains[idx[0]])
