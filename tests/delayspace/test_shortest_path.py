"""Tests for repro.delayspace.shortest_path."""

import numpy as np
import pytest

from repro.delayspace.matrix import DelayMatrix
from repro.delayspace.shortest_path import (
    detour_gains,
    shortest_path_lengths_for_edges,
    shortest_path_matrix,
)
from repro.errors import DelayMatrixError


def _tiv_matrix() -> DelayMatrix:
    delays = np.array(
        [
            [0.0, 5.0, 100.0],
            [5.0, 0.0, 5.0],
            [100.0, 5.0, 0.0],
        ]
    )
    return DelayMatrix(delays, symmetrize=False)


class TestShortestPathMatrix:
    def test_detour_shorter_than_direct(self):
        shortest = shortest_path_matrix(_tiv_matrix())
        assert shortest[0, 2] == pytest.approx(10.0)

    def test_diagonal_zero(self):
        shortest = shortest_path_matrix(_tiv_matrix())
        assert np.allclose(np.diag(shortest), 0.0)

    def test_never_longer_than_direct(self, small_internet_matrix):
        shortest = shortest_path_matrix(small_internet_matrix)
        values = small_internet_matrix.values
        finite = np.isfinite(values)
        assert np.all(shortest[finite] <= values[finite] + 1e-9)

    def test_symmetric(self, small_internet_matrix):
        shortest = shortest_path_matrix(small_internet_matrix)
        assert np.allclose(shortest, shortest.T)

    def test_disconnected_nodes_are_inf(self):
        delays = np.full((4, 4), np.nan)
        np.fill_diagonal(delays, 0.0)
        delays[0, 1] = delays[1, 0] = 5.0
        delays[2, 3] = delays[3, 2] = 7.0
        matrix = DelayMatrix(delays, symmetrize=False)
        shortest = shortest_path_matrix(matrix)
        assert np.isinf(shortest[0, 2])


class TestDetourGains:
    def test_gain_for_tiv_edge(self):
        gains = detour_gains(_tiv_matrix())
        assert gains.max() == pytest.approx(10.0)

    def test_gains_at_least_one(self, small_internet_matrix):
        gains = detour_gains(small_internet_matrix)
        assert np.all(gains >= 1.0 - 1e-9)

    def test_metric_matrix_has_unit_gains(self, euclidean_matrix):
        gains = detour_gains(euclidean_matrix)
        assert np.allclose(gains, 1.0)

    def test_shape_mismatch_raises(self, small_internet_matrix):
        with pytest.raises(DelayMatrixError):
            detour_gains(small_internet_matrix, shortest=np.zeros((3, 3)))

    def test_precomputed_shortest_used(self):
        matrix = _tiv_matrix()
        shortest = shortest_path_matrix(matrix)
        assert np.array_equal(detour_gains(matrix, shortest), detour_gains(matrix))


class TestEdgeLengths:
    def test_paired_outputs(self, small_internet_matrix):
        delays, shortest = shortest_path_lengths_for_edges(small_internet_matrix)
        assert delays.shape == shortest.shape
        assert np.all(shortest <= delays + 1e-9)
