"""Property-based tests (hypothesis) for the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.delayspace.matrix import DelayMatrix
from repro.delayspace.shortest_path import detour_gains, shortest_path_matrix
from repro.delayspace.synthetic import (
    SyntheticSpaceConfig,
    clustered_delay_space,
    euclidean_delay_space,
)
from repro.meridian.rings import MeridianConfig, ring_bounds, ring_index
from repro.neighbor.selection import percentage_penalty
from repro.scenarios.generators import load_scenario_dataset
from repro.scenarios.spec import Scenario
from repro.stats.binning import bin_by_value
from repro.stats.cdf import ECDF
from repro.tiv.severity import compute_tiv_severity, triangulation_ratios


def delay_matrices(min_nodes: int = 3, max_nodes: int = 12):
    """Strategy producing valid symmetric DelayMatrix instances."""

    def build(n: int, seed: int) -> DelayMatrix:
        rng = np.random.default_rng(seed)
        upper = rng.uniform(1.0, 500.0, size=(n, n))
        delays = np.triu(upper, k=1)
        delays = delays + delays.T
        return DelayMatrix(delays, symmetrize=False)

    return st.builds(
        build,
        st.integers(min_value=min_nodes, max_value=max_nodes),
        st.integers(min_value=0, max_value=10_000),
    )


class TestDelayMatrixProperties:
    @given(delay_matrices())
    @settings(max_examples=30, deadline=None)
    def test_symmetry_and_zero_diagonal(self, matrix):
        values = matrix.values
        assert np.allclose(values, values.T, equal_nan=True)
        assert np.allclose(np.diag(values), 0.0)

    @given(delay_matrices(), st.integers(min_value=0, max_value=11))
    @settings(max_examples=30, deadline=None)
    def test_nearest_neighbor_is_minimal(self, matrix, node):
        node = node % matrix.n_nodes
        nearest = matrix.nearest_neighbor(node)
        delays = [matrix.delay(node, j) for j in range(matrix.n_nodes) if j != node]
        assert matrix.delay(node, nearest) == pytest.approx(np.nanmin(delays))

    @given(delay_matrices())
    @settings(max_examples=20, deadline=None)
    def test_submatrix_preserves_delays(self, matrix):
        subset = list(range(0, matrix.n_nodes, 2))
        if len(subset) < 2:
            subset = [0, 1]
        sub = matrix.submatrix(subset)
        for a, i in enumerate(subset):
            for b, j in enumerate(subset):
                if a != b:
                    assert sub.delay(a, b) == pytest.approx(matrix.delay(i, j), nan_ok=True)


class TestSeverityProperties:
    @given(delay_matrices())
    @settings(max_examples=15, deadline=None)
    def test_severity_nonnegative_and_symmetric(self, matrix):
        result = compute_tiv_severity(matrix)
        severities = result.edge_severities()
        assert np.all(severities >= 0)
        finite = np.isfinite(result.severity)
        assert np.allclose(result.severity[finite], result.severity.T[finite])

    @given(delay_matrices())
    @settings(max_examples=15, deadline=None)
    def test_severity_consistent_with_ratios(self, matrix):
        result = compute_tiv_severity(matrix)
        n = matrix.n_nodes
        rng = np.random.default_rng(0)
        i, j = rng.integers(0, n), rng.integers(0, n)
        if i == j:
            j = (i + 1) % n
        ratios = triangulation_ratios(matrix, int(i), int(j))
        assert np.all(ratios > 1.0)
        assert result.edge_severity(int(i), int(j)) == pytest.approx(ratios.sum() / n)

    @given(st.integers(min_value=5, max_value=25), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_metric_spaces_have_zero_severity(self, n, seed):
        matrix = euclidean_delay_space(n, rng=seed, min_delay=0.0)
        result = compute_tiv_severity(matrix)
        assert np.all(result.edge_severities() == 0.0)

    @given(delay_matrices())
    @settings(max_examples=15, deadline=None)
    def test_violation_count_bounded(self, matrix):
        result = compute_tiv_severity(matrix)
        assert result.violation_counts.max() <= matrix.n_nodes - 2


class TestShortestPathProperties:
    @given(delay_matrices())
    @settings(max_examples=20, deadline=None)
    def test_shortest_path_never_longer_than_direct(self, matrix):
        shortest = shortest_path_matrix(matrix)
        values = matrix.values
        finite = np.isfinite(values)
        assert np.all(shortest[finite] <= values[finite] + 1e-9)

    @given(delay_matrices())
    @settings(max_examples=20, deadline=None)
    def test_detour_gains_at_least_one(self, matrix):
        gains = detour_gains(matrix)
        assert np.all(gains >= 1.0 - 1e-9)


class TestECDFProperties:
    @given(
        hnp.arrays(
            dtype=float,
            shape=st.integers(min_value=1, max_value=200),
            elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_cdf_monotone_and_bounded(self, sample):
        cdf = ECDF(sample)
        xs = np.linspace(sample.min() - 1, sample.max() + 1, 50)
        ys = cdf(xs)
        assert np.all(np.diff(ys) >= -1e-12)
        assert ys[0] >= 0.0 and ys[-1] == 1.0

    @given(
        hnp.arrays(
            dtype=float,
            shape=st.integers(min_value=2, max_value=100),
            elements=st.floats(min_value=0, max_value=1e4, allow_nan=False),
        ),
        st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=50, deadline=None)
    def test_quantile_inverse_relationship(self, sample, q):
        cdf = ECDF(sample)
        value = cdf.quantile(q)
        assert cdf.values[0] <= value <= cdf.values[-1]
        # With linear interpolation between order statistics, the CDF at the
        # q-th quantile can undershoot q by at most one sample's worth.
        assert cdf(value) >= q - 1.0 / len(cdf) - 1e-9


class TestBinningProperties:
    @given(
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=0, max_value=1000),
        st.floats(min_value=0.5, max_value=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_counts_conserved(self, n, seed, width):
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, 100, size=n)
        y = rng.uniform(0, 10, size=n)
        stats = bin_by_value(x, y, bin_width=width)
        assert stats.counts.sum() == n

    @given(st.integers(min_value=2, max_value=200), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_percentiles_ordered(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, 50, size=n)
        y = rng.normal(size=n)
        stats = bin_by_value(x, y, bin_width=5.0)
        mask = stats.counts > 0
        assert np.all(stats.p10[mask] <= stats.median[mask] + 1e-12)
        assert np.all(stats.median[mask] <= stats.p90[mask] + 1e-12)


class TestMeridianRingProperties:
    @given(
        st.floats(min_value=0, max_value=1e5, allow_nan=False),
        st.floats(min_value=0.5, max_value=10),
        st.floats(min_value=1.5, max_value=4),
        st.integers(min_value=2, max_value=15),
    )
    @settings(max_examples=60, deadline=None)
    def test_ring_index_within_bounds(self, delay, alpha, s, n_rings):
        config = MeridianConfig(alpha=alpha, s=s, n_rings=n_rings)
        idx = ring_index(delay, config)
        assert 0 <= idx < n_rings
        inner, outer = ring_bounds(idx, config)
        # The delay lies in its ring unless it was clamped into the last ring.
        assert (inner <= delay <= outer) or idx == n_rings - 1 or delay <= alpha

    @given(
        st.floats(min_value=0.1, max_value=1e4),
        st.floats(min_value=0.1, max_value=1e4),
    )
    @settings(max_examples=60, deadline=None)
    def test_ring_index_monotone_in_delay(self, d1, d2):
        config = MeridianConfig()
        lo, hi = sorted((d1, d2))
        assert ring_index(lo, config) <= ring_index(hi, config)


def scenarios():
    """Strategy producing valid scenario specifications across every dimension."""
    return st.builds(
        Scenario,
        name=st.just("prop"),
        topology=st.sampled_from(("default", "two_continent", "five_cluster", "ring", "flat")),
        tiv_level=st.sampled_from(("none", "light", "baseline", "heavy")),
        access_model=st.sampled_from(("default", "powerlaw")),
        asymmetry=st.sampled_from((0.0, 0.05, 0.15)),
        extra_jitter=st.sampled_from((0.0, 0.05, 0.1)),
        dropout=st.sampled_from((0.0, 0.05, 0.15)),
        churn=st.sampled_from((0.0, 0.2, 0.4)),
        rescale=st.sampled_from((0.5, 1.0, 2.0)),
        seed_offset=st.integers(min_value=0, max_value=3),
    )


class TestScenarioGeneratorProperties:
    """Invariants of the scenario generator layer (ISSUE 2 satellite)."""

    @given(scenarios(), st.integers(min_value=0, max_value=50))
    @settings(max_examples=25, deadline=None)
    def test_symmetry_and_zero_diagonal(self, scenario, seed):
        # Scenario matrices are RTT matrices: per-direction asymmetry is
        # averaged back in, so symmetry holds even when asymmetry is
        # requested, and the diagonal stays zero.
        matrix, _ = load_scenario_dataset(scenario, "ds2_like", 24, seed)
        values = matrix.values
        assert np.allclose(values, values.T, equal_nan=True)
        assert np.allclose(np.diag(values), 0.0)

    @given(scenarios(), st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_deterministic_per_seed(self, scenario, seed):
        first, c1 = load_scenario_dataset(scenario, "ds2_like", 24, seed)
        second, c2 = load_scenario_dataset(scenario, "ds2_like", 24, seed)
        assert np.array_equal(first.values, second.values, equal_nan=True)
        assert np.array_equal(c1, c2)

    @given(scenarios(), st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_requested_node_count_preserved(self, scenario, seed):
        matrix, clusters = load_scenario_dataset(scenario, "ds2_like", 24, seed)
        assert matrix.n_nodes == 24
        assert clusters.shape == (24,)

    @given(
        st.integers(min_value=12, max_value=40),
        st.floats(min_value=0.0, max_value=0.5),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=25, deadline=None)
    def test_requested_tiv_fraction_exact(self, n, fraction, seed):
        # The generator's ground-truth mask must contain exactly the
        # requested fraction of inflated edges (rounded to whole edges).
        config = SyntheticSpaceConfig(n_nodes=n, tiv_edge_fraction=fraction)
        _, mask = clustered_delay_space(config, rng=seed, return_tiv_edges=True)
        iu = np.triu_indices(n, k=1)
        assert mask[iu].sum() == round(fraction * iu[0].size)
        assert np.array_equal(mask, mask.T)
        assert not mask.diagonal().any()

    @given(
        st.sampled_from((0.0, 0.05, 0.1, 0.2)),
        st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=20, deadline=None)
    def test_requested_dropout_fraction_exact(self, dropout, seed):
        scenario = Scenario("prop", dropout=dropout)
        matrix, _ = load_scenario_dataset(scenario, "ds2_like", 24, seed)
        iu = np.triu_indices(24, k=1)
        missing = np.count_nonzero(~np.isfinite(matrix.values[iu]))
        assert missing == round(dropout * iu[0].size)

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_tiv_none_yields_violation_free_base(self, seed):
        # With injection off and jitter disabled the clustered geometry is
        # metric (positions + additive access delays), so severity is zero.
        config = SyntheticSpaceConfig(
            n_nodes=20, tiv_edge_fraction=0.0, jitter_fraction=0.0
        )
        matrix = clustered_delay_space(config, rng=seed)
        result = compute_tiv_severity(matrix)
        assert np.all(result.edge_severities() == 0.0)


class TestPenaltyProperties:
    @given(
        st.floats(min_value=0, max_value=1e4, allow_nan=False),
        st.floats(min_value=0.001, max_value=1e4, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_penalty_sign(self, selected, optimal):
        penalty = percentage_penalty(max(selected, optimal), optimal)
        assert penalty >= 0
        assert percentage_penalty(optimal, optimal) == 0.0

    @given(
        st.floats(min_value=0.001, max_value=1e4),
        st.floats(min_value=1.0, max_value=10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_penalty_scale_invariant(self, optimal, factor):
        selected = optimal * factor
        penalty = percentage_penalty(selected, optimal)
        scaled = percentage_penalty(selected * 3.0, optimal * 3.0)
        assert penalty == pytest.approx(scaled)
        assert penalty == pytest.approx((factor - 1.0) * 100.0)


class TestBatchedKernelProperties:
    """ISSUE 4 invariants of the batched GNP/IDES/LAT/Meridian kernels."""

    @given(st.integers(min_value=10, max_value=20), st.integers(min_value=0, max_value=9_999))
    @settings(max_examples=8, deadline=None)
    def test_gnp_batched_finite_deterministic_landmarks_exact(self, n, seed):
        from repro.coords.gnp import GNPConfig, _place_landmarks_batched, fit_gnp
        from repro.stats.rng import ensure_rng

        matrix = euclidean_delay_space(n, rng=seed)
        landmarks = list(range(4))
        config = GNPConfig(dimension=2, max_iterations=15)
        fit = fit_gnp(matrix, config, rng=seed, landmarks=landmarks, kernel="batched")
        again = fit_gnp(matrix, config, rng=seed, landmarks=landmarks, kernel="batched")
        assert np.all(np.isfinite(fit.coordinates))
        assert np.array_equal(fit.coordinates, again.coordinates)
        # The landmark rows are exactly the landmark optimisation's output:
        # the whole-matrix host solve never touches them.
        gen = ensure_rng(seed)
        expected = _place_landmarks_batched(
            matrix.values[np.ix_(landmarks, landmarks)], 2, 15, gen
        )
        assert np.array_equal(fit.coordinates[landmarks], expected)

    @given(delay_matrices(min_nodes=6, max_nodes=12))
    @settings(max_examples=10, deadline=None)
    def test_ides_batched_finite_and_landmark_vectors_exact(self, matrix):
        from repro.coords.ides import IDESConfig, _filled, _fit_svd, fit_ides

        landmarks = list(range(4))
        fit = fit_ides(
            matrix, IDESConfig(dimension=3), rng=0, landmarks=landmarks, kernel="batched"
        )
        assert np.all(np.isfinite(fit.outgoing))
        assert np.all(np.isfinite(fit.incoming))
        # Landmark vectors come straight from the landmark factorisation;
        # the one-shot host projection must not touch them.
        data = _filled(matrix)
        out, inc = _fit_svd(data[np.ix_(landmarks, landmarks)], 3)
        assert np.array_equal(fit.outgoing[landmarks], out)
        assert np.array_equal(fit.incoming[landmarks], inc)

    @given(st.integers(min_value=5, max_value=12), st.integers(min_value=0, max_value=9_999))
    @settings(max_examples=10, deadline=None)
    def test_lat_batched_matches_reference_on_any_sample_lists(self, n, seed):
        from repro.coords.lat import fit_lat
        from repro.coords.vivaldi import VivaldiConfig, VivaldiSystem

        matrix = euclidean_delay_space(n, rng=seed)
        system = VivaldiSystem(
            matrix, VivaldiConfig(n_neighbors=4, dimension=2), rng=seed
        )
        system.run(3)
        rng = np.random.default_rng(seed)
        samples = [
            [int(j) for j in rng.choice(n, size=int(rng.integers(0, n)), replace=False)]
            for _ in range(n)
        ]
        batched = fit_lat(system, samples=samples, kernel="batched")
        reference = fit_lat(system, samples=samples, kernel="reference")
        assert np.all(np.isfinite(batched.adjustments))
        assert np.allclose(batched.adjustments, reference.adjustments, atol=1e-9)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=5_000.0, allow_nan=False),
            min_size=1,
            max_size=50,
        ),
        st.floats(min_value=0.5, max_value=10.0),
        st.floats(min_value=1.5, max_value=4.0),
        st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_ring_indices_matches_scalar_ring_index(self, delays, alpha, s, n_rings):
        from repro.meridian.rings import ring_indices

        config = MeridianConfig(alpha=alpha, s=s, n_rings=n_rings)
        vectorised = ring_indices(np.asarray(delays), config)
        scalar = np.array([ring_index(d, config) for d in delays])
        assert np.array_equal(vectorised, scalar)
