"""Integration tests: every experiment runner produces a sane result.

These use a deliberately small configuration so the whole module runs in
well under a minute; the benchmarks exercise the realistic sizes.
"""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import list_experiments, run_all_experiments, run_experiment
from repro.experiments.result import ExperimentResult

SMALL = ExperimentConfig(
    n_nodes=90,
    vivaldi_seconds=30,
    selection_runs=2,
    max_clients=40,
    meridian_small_count=25,
)


@pytest.fixture(scope="module")
def all_results():
    """Run every registered experiment once with the small configuration."""
    return run_all_experiments(SMALL)


class TestRegistry:
    def test_all_figures_registered(self):
        ids = list_experiments()
        for expected in (
            "fig02", "fig03", "fig04_07", "fig08", "fig09", "fig10", "fig11",
            "text_3_2_1", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
            "fig19", "fig20", "fig21", "fig22_23", "fig24", "fig25",
        ):
            assert expected in ids

    def test_unknown_experiment_raises(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99")

    def test_results_are_structured(self, all_results):
        assert set(all_results) == set(list_experiments())
        for experiment_id, result in all_results.items():
            assert isinstance(result, ExperimentResult)
            assert result.experiment_id in (experiment_id, experiment_id.replace("fig22_23", "fig22_23"))
            assert result.title
            assert result.paper_expectation
            assert isinstance(result.data, dict) and result.data
            assert isinstance(result.summary(), dict)


class TestSection2Results:
    def test_fig02_all_datasets_have_tivs(self, all_results):
        curves = all_results["fig02"].data["curves"]
        assert set(curves) == {"DS2", "Meridian", "p2psim", "PlanetLab"}
        for name, curve in curves.items():
            assert curve["max"] > 0, name
            assert 0 <= curve["fraction_zero"] <= 1

    def test_fig03_cross_cluster_worse(self, all_results):
        data = all_results["fig03"].data
        assert data["mean_cross_violations"] >= data["mean_within_violations"]
        n = SMALL.n_nodes
        assert data["reordered_severity"].shape == (n, n)

    def test_fig04_07_series_present(self, all_results):
        series = all_results["fig04_07"].data["series"]
        assert set(series) == {"DS2", "Meridian", "p2psim", "PlanetLab"}
        for curve in series.values():
            assert len(curve["median"]) == len(curve["bin_centers"])

    def test_fig08_fractions_bounded(self, all_results):
        data = all_results["fig08"].data
        fractions = [f for f in data["within_cluster_fraction"] if not np.isnan(f)]
        assert fractions
        assert all(0 <= f <= 1 for f in fractions)

    def test_fig09_proximity_gap_small(self, all_results):
        datasets = all_results["fig09"].data["datasets"]
        for name, stats in datasets.items():
            assert stats["median_nearest_difference"] >= 0
            assert stats["median_random_difference"] >= 0


class TestSection3Results:
    def test_fig10_oscillation_persists(self, all_results):
        data = all_results["fig10"].data
        assert max(data["residual_oscillation"].values()) > 1.0
        assert len(data["times"]) == len(next(iter(data["traces"].values())))

    def test_fig11_oscillation_positive(self, all_results):
        data = all_results["fig11"].data
        assert data["median_oscillation_ms"] > 0
        assert data["movement_speed"]["p90"] >= data["movement_speed"]["median"]

    def test_text_stats_in_plausible_range(self, all_results):
        data = all_results["text_3_2_1"].data
        assert 0.01 < data["violating_triangle_fraction"] < 0.6
        assert data["median_abs_error_ms"] > 0
        assert data["p90_abs_error_ms"] >= data["median_abs_error_ms"]

    def test_fig13_beta_tradeoff(self, all_results):
        series = all_results["fig13"].data["series"]
        assert series["beta=0.9"]["overall_mean"] <= series["beta=0.1"]["overall_mean"] + 1e-9

    def test_fig14_euclidean_beats_tiv_data(self, all_results):
        results = all_results["fig14"].data["results"]
        assert results["Euclidean"]["exact_fraction"] >= results["DS2"]["exact_fraction"]


class TestSection4Results:
    def test_fig15_reports_both_mechanisms(self, all_results):
        """Structural check only: the paper-direction claim (IDES no better
        than Vivaldi for neighbour selection) is asserted at realistic scale
        by benchmarks/test_fig15.py — at this test's tiny scale the landmark
        budget covers a large share of the matrix and the comparison flips.
        """
        data = all_results["fig15"].data
        for key in ("vivaldi", "ides"):
            assert data[key]["tests"] > 0
            assert data[key]["mean_penalty"] >= 0

    def test_fig16_lat_marginal(self, all_results):
        data = all_results["fig16"].data
        assert abs(
            data["vivaldi_lat"]["exact_fraction"] - data["vivaldi"]["exact_fraction"]
        ) < 0.3

    def test_fig17_filter_marginal_for_vivaldi(self, all_results):
        data = all_results["fig17"].data
        assert "vivaldi_severity_filter" in data

    def test_fig18_filter_hurts_meridian(self, all_results):
        data = all_results["fig18"].data
        assert (
            data["meridian_severity_filter"]["mean_penalty"]
            >= data["meridian_original"]["mean_penalty"] - 5.0
        )


class TestSection5Results:
    def test_fig19_trend(self, all_results):
        data = all_results["fig19"].data
        assert data["median_severity_shrunk"] >= data["median_severity_stretched"]

    def test_fig20_21_tradeoff(self, all_results):
        accuracy_curves = all_results["fig20"].data["curves"]
        recall_curves = all_results["fig21"].data["curves"]
        assert set(accuracy_curves) == set(recall_curves)
        for curve in recall_curves.values():
            recalls = curve["recall"]
            assert recalls[-1] >= recalls[0]

    def test_fig22_23_severity_decreases(self, all_results):
        severity = all_results["fig22_23"].data["neighbor_edge_severity"]
        assert severity[max(severity)]["mean"] <= severity[0]["mean"]

    def test_fig22_23_penalty_improves(self, all_results):
        penalties = all_results["fig22_23"].data["selection_penalty"]
        last = max(penalties)
        assert penalties[last]["exact_fraction"] >= penalties[0]["exact_fraction"] - 0.05

    def test_fig24_25_report_overhead(self, all_results):
        for fid in ("fig24", "fig25"):
            results = all_results[fid].data["results"]
            assert "meridian_original" in results
            assert "meridian_tiv_alert" in results
            assert results["meridian_tiv_alert"]["probes"] > 0
        assert "meridian_no_termination" in all_results["fig25"].data["results"]
