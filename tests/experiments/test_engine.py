"""Tests for the parallel cached experiment engine.

The configurations here are deliberately tiny so the module stays fast; the
engine's behaviour (parallel == sequential, warm run == cold run, 100 %
cache hits on the second pass) is seed- and size-independent.
"""

import json

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.cache import ArtifactCache
from repro.experiments.config import ExperimentConfig
from repro.experiments.context import ExperimentContext
from repro.experiments.engine import (
    ExperimentEngine,
    resolve_jobs,
    results_equal,
    run_experiments,
)
from repro.experiments.registry import (
    list_experiments,
    run_all_experiments,
    run_experiment,
)

TINY = ExperimentConfig(
    n_nodes=48,
    vivaldi_seconds=8,
    selection_runs=1,
    max_clients=16,
    meridian_small_count=10,
)

#: Cheap subset that still exercises every shared artefact (matrix,
#: clusters, severity, shortest paths, Vivaldi, alert, multi-dataset loads).
SUBSET = ("fig02", "fig03", "fig08", "fig19", "text_3_2_1")


class TestParallelExecution:
    def test_parallel_matches_sequential(self):
        sequential = run_experiments(TINY, only=list(SUBSET), jobs=1)
        parallel = run_experiments(TINY, only=list(SUBSET), jobs=2)
        assert set(sequential.results) == set(parallel.results) == set(SUBSET)
        for experiment_id in SUBSET:
            assert results_equal(
                sequential.results[experiment_id].data,
                parallel.results[experiment_id].data,
            ), experiment_id

    def test_parallel_report_covers_every_experiment(self):
        outcome = run_experiments(TINY, only=list(SUBSET), jobs=2)
        report = outcome.report.as_dict()
        assert [entry["id"] for entry in report["experiments"]] == list(SUBSET)
        assert all(entry["status"] == "ok" for entry in report["experiments"])
        assert report["jobs"] == 2

    def test_unknown_id_rejected_in_parallel_mode(self):
        with pytest.raises(ExperimentError):
            run_experiments(TINY, only=["fig99"], jobs=2)

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1
        with pytest.raises(ExperimentError):
            resolve_jobs(-2)


class TestCachedRuns:
    def test_cold_then_warm_run_is_all_hits(self, tmp_path):
        cache_dir = tmp_path / "artifacts"
        report_path = tmp_path / "BENCH_experiments.json"
        cold = run_experiments(
            TINY, only=list(SUBSET), jobs=1, cache_dir=cache_dir, report_path=report_path
        )
        assert cold.report.total_cache().misses > 0
        assert not cold.report.all_cache_hits

        warm = run_experiments(
            TINY, only=list(SUBSET), jobs=1, cache_dir=cache_dir, report_path=report_path
        )
        total = warm.report.total_cache()
        assert total.misses == 0
        assert total.hits > 0
        assert warm.report.all_cache_hits
        for experiment_id in SUBSET:
            assert results_equal(
                cold.results[experiment_id].data, warm.results[experiment_id].data
            ), experiment_id

    def test_full_sweep_warm_phase_precomputes_shared_artifacts(self, tmp_path):
        outcome = run_experiments(TINY, jobs=1, cache_dir=tmp_path / "artifacts")
        report = outcome.report.as_dict()
        assert report["shared_precompute"] is not None
        assert report["shared_precompute"]["cache"]["stores"] > 0
        assert len(outcome.results) == len(report["experiments"])

    def test_report_file_schema(self, tmp_path):
        report_path = tmp_path / "BENCH_experiments.json"
        run_experiments(
            TINY, only=["fig03"], jobs=1, cache_dir=tmp_path / "artifacts",
            report_path=report_path,
        )
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        assert payload["schema"] == "bench-experiments/v1"
        assert payload["config"]["n_nodes"] == TINY.n_nodes
        assert {"experiments", "wall_seconds", "cache", "all_cache_hits"} <= set(
            payload["totals"]
        )
        for entry in payload["experiments"]:
            assert {"id", "wall_seconds", "cache", "status"} <= set(entry)

    def test_parallel_warm_run_matches_uncached(self, tmp_path):
        uncached = run_experiments(TINY, only=list(SUBSET), jobs=1)
        cache_dir = tmp_path / "artifacts"
        # Prime with the same parallel command: repeating an identical
        # invocation is the warm-run contract (a parallel run's warm phase
        # provisions every shared artefact, including ones the subset
        # itself never touches).
        run_experiments(TINY, only=list(SUBSET), jobs=2, cache_dir=cache_dir)
        warm_parallel = run_experiments(
            TINY, only=list(SUBSET), jobs=2, cache_dir=cache_dir
        )
        assert warm_parallel.report.all_cache_hits
        for experiment_id in SUBSET:
            assert results_equal(
                uncached.results[experiment_id].data,
                warm_parallel.results[experiment_id].data,
            ), experiment_id


class TestContextCache:
    def test_matrix_and_severity_round_trip_bit_for_bit(self, tmp_path):
        cache = ArtifactCache(tmp_path / "artifacts")
        first = ExperimentContext(TINY, cache=cache)
        matrix = first.matrix
        severity = first.severity
        shortest = first.shortest_paths

        second = ExperimentContext(TINY, cache=ArtifactCache(tmp_path / "artifacts"))
        assert np.array_equal(second.matrix.values, matrix.values, equal_nan=True)
        assert second.matrix.labels == matrix.labels
        assert np.array_equal(
            second.severity.severity, severity.severity, equal_nan=True
        )
        assert np.array_equal(
            second.severity.violation_counts, severity.violation_counts
        )
        assert np.array_equal(second.shortest_paths, shortest, equal_nan=True)

    def test_vivaldi_and_alert_round_trip(self, tmp_path):
        cache_dir = tmp_path / "artifacts"
        first = ExperimentContext(TINY, cache=ArtifactCache(cache_dir))
        vivaldi = first.vivaldi
        alert = first.alert

        second = ExperimentContext(TINY, cache=ArtifactCache(cache_dir))
        restored = second.vivaldi
        assert np.array_equal(restored.coordinates, vivaldi.coordinates)
        assert np.array_equal(restored.errors, vivaldi.errors)
        assert restored.simulation_time == vivaldi.simulation_time
        assert np.array_equal(
            restored.predicted_matrix(), vivaldi.predicted_matrix()
        )
        assert np.array_equal(
            second.alert.ratio_matrix, alert.ratio_matrix, equal_nan=True
        )

    def test_selection_knobs_do_not_invalidate_embedding_cache(self, tmp_path):
        # max_clients/selection_runs never enter the Vivaldi simulation, so
        # changing them must reuse the cached embedding and alert.
        cache_dir = tmp_path / "artifacts"
        first = ExperimentContext(TINY, cache=ArtifactCache(cache_dir))
        original = first.alert

        import dataclasses

        tweaked = dataclasses.replace(TINY, max_clients=7, selection_runs=2)
        counting = ArtifactCache(cache_dir)
        second = ExperimentContext(tweaked, cache=counting)
        assert np.array_equal(
            second.alert.ratio_matrix, original.ratio_matrix, equal_nan=True
        )
        assert counting.stats.misses == 0
        assert counting.stats.hits >= 1

    def test_cluster_assignment_round_trip(self, tmp_path):
        cache_dir = tmp_path / "artifacts"
        first = ExperimentContext(TINY, cache=ArtifactCache(cache_dir))
        original = first.cluster_assignment
        second = ExperimentContext(TINY, cache=ArtifactCache(cache_dir))
        restored = second.cluster_assignment
        assert np.array_equal(restored.labels, original.labels)
        assert restored.n_clusters == original.n_clusters
        assert restored.heads == original.heads
        assert restored.cluster_radius == pytest.approx(original.cluster_radius)

    def test_corrupted_entry_is_recomputed_not_crashed(self, tmp_path):
        cache_dir = tmp_path / "artifacts"
        first = ExperimentContext(TINY, cache=ArtifactCache(cache_dir))
        expected = first.matrix.values.copy()

        for npz_path in cache_dir.rglob("*.npz"):
            npz_path.write_bytes(b"garbage, not an archive")

        recovered = ExperimentContext(TINY, cache=ArtifactCache(cache_dir))
        assert np.array_equal(recovered.matrix.values, expected, equal_nan=True)
        # The recomputed artefact was re-stored, so a third context hits.
        cache = ArtifactCache(cache_dir)
        third = ExperimentContext(TINY, cache=cache)
        assert np.array_equal(third.matrix.values, expected, equal_nan=True)
        assert cache.stats.hits >= 1
        assert cache.stats.misses == 0

    def test_uncached_context_unchanged(self):
        context = ExperimentContext(TINY)
        assert context.cache is None
        assert context.matrix.n_nodes == TINY.n_nodes


class TestRegistryIntegration:
    def test_run_all_experiments_delegates_to_engine(self, tmp_path):
        results = run_all_experiments(
            TINY, only=["fig03"], jobs=1, cache_dir=str(tmp_path / "artifacts")
        )
        assert set(results) == {"fig03"}
        # The delegate persisted artefacts: a context over the same dir hits.
        cache = ArtifactCache(tmp_path / "artifacts")
        context = ExperimentContext(TINY, cache=cache)
        _ = context.matrix
        assert cache.stats.hits == 1

    def test_run_experiment_unknown_id_raises(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99", TINY)

    def test_run_experiment_with_shared_context(self):
        context = ExperimentContext(TINY)
        via_context = run_experiment("fig03", context=context)
        via_config = run_experiment("fig03", TINY)
        assert results_equal(via_context.data, via_config.data)


class TestResultsEqual:
    def test_nan_tolerant(self):
        assert results_equal(
            {"a": [1.0, float("nan")], "b": np.array([np.nan, 2.0])},
            {"a": [1.0, float("nan")], "b": np.array([np.nan, 2.0])},
        )

    def test_detects_differences(self):
        assert not results_equal({"a": 1}, {"a": 2})
        assert not results_equal({"a": 1}, {"b": 1})
        assert not results_equal([1, 2], [1, 2, 3])
        assert not results_equal(np.arange(3), np.arange(4))


class TestEngineValidation:
    def test_unknown_only_rejected_before_running(self, tmp_path):
        engine = ExperimentEngine(TINY, jobs=1, cache_dir=tmp_path / "artifacts")
        with pytest.raises(ExperimentError, match="unknown experiments"):
            engine.run(only=["fig03", "not_a_figure"])
        # Nothing ran: the cache directory was never populated.
        assert not list((tmp_path / "artifacts").rglob("*.npz"))


class TestDeclaredNeedsScoping:
    @pytest.mark.parametrize("experiment_id", sorted(list_experiments()))
    def test_declared_needs_match_runner_usage(self, tmp_path, experiment_id):
        # Pin the declarations to reality: warming exactly the declared
        # artifact graph must leave the runner with zero cache misses.  A
        # stale declaration would make cold parallel workers silently
        # recompute the skipped artifact (no failure, just duplicated
        # wall-clock).
        cache_dir = tmp_path / "artifacts"
        engine = ExperimentEngine(TINY, jobs=1, cache_dir=cache_dir)
        engine.warm(ArtifactCache(cache_dir), [experiment_id])

        counting = ArtifactCache(cache_dir)
        run_experiment(
            experiment_id, context=ExperimentContext(TINY, cache=counting)
        )
        assert counting.stats.misses == 0, (
            f"{experiment_id} used artifacts its registered needs do not declare"
        )

    def test_already_warm_parallel_run_submits_no_artifact_tasks(self, tmp_path):
        # Every artifact address is already materialised, so the frontier
        # scheduler must submit zero artifact tasks: the shared record
        # stays all-zero and the figures run straight off the cache.
        cache_dir = tmp_path / "artifacts"
        run_experiments(TINY, only=list(SUBSET), jobs=2, cache_dir=cache_dir)
        warm = run_experiments(TINY, only=list(SUBSET), jobs=2, cache_dir=cache_dir)
        shared = warm.report.as_dict()["shared_precompute"]
        assert shared["cache"] == {"hits": 0, "misses": 0, "stores": 0}
        assert warm.report.as_dict()["artifacts"] == []
        assert warm.report.all_cache_hits

    def test_subset_warm_skips_unneeded_artifacts(self, tmp_path):
        # fig03 needs matrix/clusters/severity only: no Vivaldi, alert or
        # shortest-path entries should be materialised.
        run_experiments(TINY, only=["fig03"], jobs=2, cache_dir=tmp_path / "artifacts")
        kinds = {p.name for p in (tmp_path / "artifacts").iterdir()}
        assert "dataset" in kinds and "severity" in kinds and "clusters" in kinds
        assert "vivaldi" not in kinds
        assert "alert" not in kinds
        assert "shortest_path" not in kinds


class TestFailureReporting:
    def test_failed_experiment_recorded_and_raised(self, tmp_path, monkeypatch):
        from repro.experiments import registry

        def _boom(config=None, *, context=None, **kwargs):
            raise RuntimeError("synthetic failure")

        monkeypatch.setitem(
            registry._REGISTRY,
            "fig03",
            registry.RegisteredExperiment(_boom, frozenset({"matrix"})),
        )
        report_path = tmp_path / "BENCH_experiments.json"
        with pytest.raises(ExperimentError, match="synthetic failure"):
            run_experiments(
                TINY, only=["fig03", "fig08"], jobs=1, report_path=report_path
            )
        # The report was still written, with the failure recorded and the
        # healthy experiment completed.
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        by_id = {entry["id"]: entry for entry in payload["experiments"]}
        assert by_id["fig03"]["status"] == "error"
        assert "synthetic failure" in by_id["fig03"]["error"]
        assert by_id["fig08"]["status"] == "ok"


class TestSchemaMismatchRecovery:
    def test_entry_with_wrong_fields_is_recomputed(self, tmp_path):
        from repro.artifacts import ArtifactKey

        cache = ArtifactCache(tmp_path / "artifacts")
        context = ExperimentContext(TINY, cache=cache)
        params = context.artifact_params(ArtifactKey("clusters"))
        # A structurally valid entry whose contents don't match what the
        # restore path expects (e.g. written by an older code version).
        cache.store("clusters", params, {"wrong_array": np.zeros(3)}, meta={})
        assignment = context.cluster_assignment
        assert assignment.n_clusters >= 1
        # The bad entry was evicted and replaced; a fresh context now
        # restores the recomputed one cleanly.
        fresh = ExperimentContext(TINY, cache=ArtifactCache(tmp_path / "artifacts"))
        assert np.array_equal(fresh.cluster_assignment.labels, assignment.labels)


class TestRobustness:
    def test_duplicate_only_ids_are_deduplicated(self):
        outcome = run_experiments(TINY, only=["fig03", "fig03", "fig03"], jobs=1)
        assert list(outcome.results) == ["fig03"]
        assert [r.experiment_id for r in outcome.report.records] == ["fig03"]
        assert outcome.report.as_dict()["totals"]["experiments"] == 1

    def test_failure_error_includes_exception_type_and_chains_cause(self, monkeypatch):
        from repro.experiments import registry

        def _boom(config=None, *, context=None, **kwargs):
            raise ValueError()  # deliberately empty message

        monkeypatch.setitem(
            registry._REGISTRY,
            "fig03",
            registry.RegisteredExperiment(_boom, frozenset({"matrix"})),
        )
        with pytest.raises(ExperimentError, match="ValueError") as excinfo:
            run_experiments(TINY, only=["fig03"], jobs=1)
        assert isinstance(excinfo.value.__cause__, ValueError)


class TestStrawmanArtifacts:
    """The cached IDES/LAT embeddings (ISSUE 4) behave like every artefact."""

    def test_fig15_fig16_deterministic_across_jobs(self):
        """Per-seed determinism of the batched strawman kernels must hold
        whether the runners share one in-process context (jobs=1) or
        rebuild their own from scratch in worker processes (jobs=2)."""
        sequential = run_experiments(TINY, only=["fig15", "fig16"], jobs=1)
        parallel = run_experiments(TINY, only=["fig15", "fig16"], jobs=2)
        for experiment_id in ("fig15", "fig16"):
            assert results_equal(
                sequential.results[experiment_id].data,
                parallel.results[experiment_id].data,
            ), experiment_id

    def test_warm_run_restores_identical_strawman_results(self, tmp_path):
        cache_dir = tmp_path / "artifacts"
        cold = run_experiments(TINY, only=["fig15", "fig16"], jobs=1, cache_dir=cache_dir)
        warm = run_experiments(TINY, only=["fig15", "fig16"], jobs=1, cache_dir=cache_dir)
        for experiment_id in ("fig15", "fig16"):
            assert results_equal(
                cold.results[experiment_id].data, warm.results[experiment_id].data
            ), experiment_id
        assert warm.report.all_cache_hits

    def test_reference_coords_kernel_addresses_separate_entries(self, tmp_path):
        """Switching the coords kernels must miss (and refill) the cache,
        not reuse the other kernel's artefacts."""
        import dataclasses

        from repro.experiments.config import COORDS_SYSTEMS

        cache_dir = tmp_path / "artifacts"
        run_experiments(TINY, only=["fig16"], jobs=1, cache_dir=cache_dir)
        reference = dataclasses.replace(
            TINY, kernels={system: "reference" for system in COORDS_SYSTEMS}
        )
        outcome = run_experiments(reference, only=["fig16"], jobs=1, cache_dir=cache_dir)
        total = outcome.report.total_cache()
        assert total.misses > 0

    def test_deprecated_kernel_kwargs_hit_the_same_cache(self, tmp_path):
        """Cross-version warm-cache contract (PR 6): artefacts stored under
        a config built with the retired ``vivaldi_kernel``/``coords_kernel``
        kwargs must be served as hits to the equivalent ``kernels``-mapping
        config — the deprecation shim may not move a single address."""
        import dataclasses

        from repro.experiments.config import COORDS_SYSTEMS

        cache_dir = tmp_path / "artifacts"
        with pytest.warns(DeprecationWarning):
            legacy = dataclasses.replace(
                TINY, vivaldi_kernel="reference", coords_kernel="reference"
            )
        run_experiments(legacy, only=["fig16", "fig19"], jobs=1, cache_dir=cache_dir)
        modern = dataclasses.replace(
            TINY,
            kernels={"vivaldi": "reference", **{s: "reference" for s in COORDS_SYSTEMS}},
        )
        assert modern == legacy
        warm = run_experiments(modern, only=["fig16", "fig19"], jobs=1, cache_dir=cache_dir)
        assert warm.report.all_cache_hits
