"""The zero-copy shared-memory artifact tier.

Unit tests exercise the tier's concurrency contract directly (exactly-once
publish, reader survival across run end, LRU eviction, mmap entries
surviving eviction); engine-level tests assert the run-report accounting,
on/off behavioural identity, and — via injected worker crashes and
interrupts — that neither shared-memory segments nor scratch cache
directories ever leak.

The pool uses the ``fork`` start method on Linux, so monkeypatching the
experiment registry in the parent is visible inside the workers.
"""

import json
import os
import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.cache import (
    ArtifactCache,
    SharedArtifactTier,
    ShmArray,
    shm_supported,
    stable_key,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import (
    make_shm_spec,
    resolve_shm,
    run_experiments,
)
from repro.experiments.result import ExperimentResult

TINY = ExperimentConfig(
    n_nodes=48,
    vivaldi_seconds=8,
    selection_runs=1,
    max_clients=16,
    meridian_small_count=10,
)

pytestmark = pytest.mark.skipif(
    not shm_supported(), reason="POSIX shared memory unavailable"
)

SHM_DIR = Path("/dev/shm")


def _segments() -> set[str]:
    """Names of our shared-memory segments currently visible to the OS."""
    if not SHM_DIR.is_dir():
        return set()
    return {path.name for path in SHM_DIR.glob("rp*")}


@pytest.fixture
def no_leaked_segments():
    """Assert the test leaves no new ``rp*`` segment behind."""
    before = _segments()
    yield
    leaked = _segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def _payload(fill: float, n: int = 32) -> dict[str, np.ndarray]:
    return {
        "delays": np.full((n, n), fill),
        "clusters": np.arange(n, dtype=np.int64),
    }


class TestTierConcurrency:
    def test_racing_publishers_are_exactly_once(self, tmp_path, no_leaked_segments):
        # Two workers of the same run share the table and token: whoever
        # lands the descriptor first wins; the other's publish is a no-op
        # report of "already resident", and attaching yields the winner's
        # bytes.  stats.published across both must therefore be exactly 1.
        table = tmp_path / "table"
        first = SharedArtifactTier(table, token="cafe0123")
        second = SharedArtifactTier(table, token="cafe0123")
        try:
            address = stable_key("dataset", {"seed": 0})
            assert first.publish("dataset", address, _payload(1.0), meta={"who": "first"})
            assert second.publish("dataset", address, _payload(2.0), meta={"who": "second"})
            assert first.stats.published + second.stats.published == 1
            entry = second.attach("dataset", address)
            assert entry is not None
            assert isinstance(entry.arrays["delays"], ShmArray)
            assert not entry.arrays["delays"].flags.writeable
            np.testing.assert_array_equal(entry.arrays["delays"], _payload(1.0)["delays"])
            assert entry.meta == {"who": "first"}
        finally:
            first.close()
            second.close()
            SharedArtifactTier.cleanup(table)

    def test_mid_flight_peer_makes_publish_report_not_resident(
        self, tmp_path, no_leaked_segments
    ):
        from multiprocessing import shared_memory

        # A peer that created the segment but has not landed its
        # descriptor yet holds the name: our publish must not win, must
        # not crash, and must tell the caller to keep its disk copy.
        table = tmp_path / "table"
        tier = SharedArtifactTier(table, token="cafe0123")
        address = stable_key("dataset", {"seed": 1})
        peer = shared_memory.SharedMemory(
            name=f"rpcafe0123{address[:12]}", create=True, size=64
        )
        try:
            assert tier.publish("dataset", address, _payload(3.0)) is False
            assert tier.stats.published == 0
            # The losing publisher cleaned up its intent marker.
            assert not list(table.glob("*.intent"))
        finally:
            tier.close()
            peer.close()
            peer.unlink()
            SharedArtifactTier.cleanup(table)

    def test_attached_reader_survives_run_end(self, tmp_path, no_leaked_segments):
        # POSIX unlink removes only the name: a reader attached while the
        # producing run tears down keeps a valid mapping, and the *next*
        # attach cleanly reports a miss so the caller restores from disk.
        table = tmp_path / "table"
        producer = SharedArtifactTier(table, token="cafe0123")
        reader = SharedArtifactTier(table, token="cafe0123")
        address = stable_key("dataset", {"seed": 2})
        arrays = _payload(4.0)
        assert producer.publish("dataset", address, arrays)
        entry = reader.attach("dataset", address)
        assert entry is not None
        producer.close()
        SharedArtifactTier.cleanup(table)  # the run ends under the reader
        np.testing.assert_array_equal(entry.arrays["delays"], arrays["delays"])
        assert reader.attach("dataset", address) is None  # disk fallback
        del entry
        reader.close()

    def test_mmap_load_survives_concurrent_evict(self, tmp_path):
        # The raw tier has the same unlink semantics one level down: a
        # reader holding np.load(mmap_mode="r") views keeps reading after
        # another process evicts the entry out from under it.
        cache = ArtifactCache(tmp_path / "cache")
        params = {"seed": 3, "n_nodes": 16}
        arrays = {"block": np.arange(256, dtype=np.float64).reshape(16, 16)}
        cache.store_raw("dataset", params, arrays)
        entry = cache.load_raw("dataset", params, mmap=True)
        assert isinstance(entry.arrays["block"], np.memmap)
        ArtifactCache(tmp_path / "cache").evict("dataset", params)
        assert cache.load_raw("dataset", params) is None  # eviction took
        np.testing.assert_array_equal(entry.arrays["block"], arrays["block"])

    def test_lru_eviction_to_disk_only(self, tmp_path, no_leaked_segments):
        # An allowance sized for one artifact forces the second publish to
        # evict the least-recently-attached segment; the evicted address
        # cleanly falls back (attach -> None) while the survivor attaches.
        table = tmp_path / "table"
        one = _payload(1.0)
        size = sum(a.nbytes for a in one.values())
        tier = SharedArtifactTier(table, token="cafe0123", allowance_bytes=size + 256)
        try:
            old = stable_key("dataset", {"seed": 4})
            new = stable_key("dataset", {"seed": 5})
            assert tier.publish("dataset", old, one)
            assert tier.publish("dataset", new, _payload(2.0))
            assert tier.stats.evictions >= 1
            assert tier.attach("dataset", old) is None
            assert tier.attach("dataset", new) is not None
            # An artifact bigger than the whole allowance is never resident.
            assert not tier.publish(
                "dataset", stable_key("dataset", {"seed": 6}), _payload(3.0, n=64)
            )
        finally:
            tier.close()
            SharedArtifactTier.cleanup(table)

    def test_cleanup_is_idempotent_and_total(self, tmp_path, no_leaked_segments):
        table = tmp_path / "table"
        tier = SharedArtifactTier(table, token="cafe0123")
        tier.publish("dataset", stable_key("dataset", {"seed": 7}), _payload(1.0))
        tier.close()
        SharedArtifactTier.cleanup(table)
        assert not table.exists()
        SharedArtifactTier.cleanup(table)  # second call is a no-op

    def test_sweep_intents_reclaims_crashed_publisher(
        self, tmp_path, no_leaked_segments
    ):
        from multiprocessing import shared_memory

        # Simulate a worker that died between creating its segment and
        # landing the descriptor: the intent marker is all that remains,
        # and the rebuild-time sweep reclaims the orphaned segment.
        table = tmp_path / "table"
        table.mkdir()
        orphan = shared_memory.SharedMemory(name="rpdeadbeef0rphan", create=True, size=64)
        orphan.close()
        (table / "abc123.intent").write_text(
            json.dumps({"segment": "rpdeadbeef0rphan"}), encoding="utf-8"
        )
        assert SharedArtifactTier.sweep_intents(table) == 1
        assert not list(table.glob("*.intent"))
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name="rpdeadbeef0rphan")


class TestResolveShm:
    def test_sequential_and_explicit_off_never_enable(self):
        assert resolve_shm(None, 1) is False
        assert resolve_shm(True, 1) is False
        assert resolve_shm(False, 4) is False

    def test_env_knob_disables_auto_but_not_explicit(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        assert resolve_shm(None, 4) is False
        assert resolve_shm(True, 4) is True  # explicit request wins

    def test_spec_table_is_dot_prefixed_inside_the_cache(self, tmp_path):
        spec = make_shm_spec(str(tmp_path), scratch=True)
        assert Path(spec.table_dir).parent == tmp_path
        assert Path(spec.table_dir).name == f".shm-{spec.token}"
        assert spec.scratch is True


class TestEngineIntegration:
    def test_cold_parallel_run_attaches_instead_of_restoring(
        self, tmp_path, no_leaked_segments
    ):
        outcome = run_experiments(
            TINY,
            only=["fig03", "fig16", "fig19"],
            jobs=2,
            cache_dir=tmp_path / "cache",
        )
        totals = outcome.report.as_dict()["totals"]["artifacts"]
        # Same-run dependents go through the zero-copy tier, not disk.
        assert totals["attached"] > 0
        assert totals["restored"] == 0
        assert totals["shm"]["published"] > 0
        assert totals["shm"]["attaches"] > 0
        assert totals["shm"]["fallbacks"] == 0
        # The run-scoped segment table was torn down with the run.
        assert not list((tmp_path / "cache").glob(".shm-*"))

    def test_results_and_cache_layout_identical_with_tier_off(self, tmp_path):
        from repro.experiments.engine import results_equal

        with_shm = run_experiments(
            TINY, only=["fig03", "fig19"], jobs=2, cache_dir=tmp_path / "on"
        )
        without = run_experiments(
            TINY, only=["fig03", "fig19"], jobs=2, cache_dir=tmp_path / "off", shm=False
        )
        assert without.report.shm.as_dict() == {
            "published": 0,
            "publish_bytes": 0,
            "attaches": 0,
            "attach_bytes": 0,
            "fallbacks": 0,
            "evictions": 0,
        }
        for experiment_id in ("fig03", "fig19"):
            assert results_equal(
                with_shm.results[experiment_id].data,
                without.results[experiment_id].data,
            ), experiment_id
        # The durable tier is byte-for-byte unaffected: same addresses,
        # same files, whichever transport carried the arrays in-run.
        layout = lambda root: {  # noqa: E731
            str(path.relative_to(root))
            for path in root.rglob("*")
            if path.is_file() and ".shm-" not in str(path)
        }
        assert layout(tmp_path / "on") == layout(tmp_path / "off")

    def test_warm_parallel_run_stays_all_cache_hits(self, tmp_path):
        run_experiments(TINY, only=["fig03", "fig19"], jobs=2, cache_dir=tmp_path / "c")
        warm = run_experiments(
            TINY, only=["fig03", "fig19"], jobs=2, cache_dir=tmp_path / "c"
        )
        totals = warm.report.as_dict()["totals"]
        assert totals["all_cache_hits"], totals
        assert totals["cache"]["misses"] == 0


def _stub_result(experiment_id: str) -> ExperimentResult:
    return ExperimentResult(
        experiment_id=experiment_id, title="shm crash stub", data={"value": 1.0}
    )


def _crash_once_runner(sentinel: str):
    """A figure runner that hard-kills its worker on the first attempt."""

    def _runner(config=None, *, context=None, **kwargs):
        if not os.path.exists(sentinel):
            with open(sentinel, "w", encoding="utf-8") as handle:
                handle.write("crashed")
            os._exit(1)
        return _stub_result("fig03")

    return _runner


class TestCrashAndInterruptHygiene:
    def test_pool_rebuild_leaks_no_scratch_dir_or_segments(
        self, tmp_path, monkeypatch, no_leaked_segments
    ):
        from repro.experiments import registry

        # An uncached parallel run uses an ephemeral scratch cache; a
        # worker crash mid-run (BrokenProcessPool -> supervised rebuild)
        # must not leak the repro-engine-cache-* directory, the run's
        # .shm-* table, or any segment.  Redirecting tempfile makes every
        # scratch dir land somewhere we can exhaustively inspect.
        scratch_root = tmp_path / "tmproot"
        scratch_root.mkdir()
        monkeypatch.setattr(tempfile, "tempdir", str(scratch_root))
        sentinel = str(tmp_path / "crashed-once")
        monkeypatch.setitem(
            registry._REGISTRY,
            "fig03",
            registry.RegisteredExperiment(
                _crash_once_runner(sentinel), frozenset({"matrix"})
            ),
        )
        outcome = run_experiments(TINY, only=["fig03", "fig02"], jobs=2)
        assert outcome.failures == {}
        assert outcome.report.pool_rebuilds >= 1
        leftovers = list(scratch_root.glob("repro-engine-cache-*"))
        assert leftovers == [], f"leaked scratch caches: {leftovers}"

    def test_keyboard_interrupt_cleans_up_table_and_segments(
        self, tmp_path, monkeypatch, no_leaked_segments
    ):
        import repro.experiments.engine as engine_module

        # ^C lands in the scheduler's wait loop; the finally must still
        # unlink the run's segments and remove its table directory.
        def _interrupt(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(engine_module, "wait", _interrupt)
        with pytest.raises(KeyboardInterrupt):
            run_experiments(
                TINY, only=["fig03"], jobs=2, cache_dir=tmp_path / "cache"
            )
        assert not list((tmp_path / "cache").glob(".shm-*"))
