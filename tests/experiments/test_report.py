"""Tests for repro.experiments.report."""

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import generate_report, render_result
from repro.experiments.result import ExperimentResult


def _fake_result() -> ExperimentResult:
    return ExperimentResult(
        experiment_id="fig99",
        title="A fake figure",
        data={
            "winner": "tiv_aware",
            "metrics": {"exact_fraction": 0.91234567, "probes": 1200},
            "curve": np.arange(100),
            "nested": {"deep": {"value": 3}},
        },
        paper_expectation="The TIV-aware variant wins.",
        notes="synthetic scale",
    )


class TestRenderResult:
    def test_contains_title_and_expectation(self):
        text = render_result(_fake_result())
        assert "## fig99 — A fake figure" in text
        assert "The TIV-aware variant wins." in text
        assert "*Notes*: synthetic scale" in text

    def test_scalars_flattened_arrays_skipped(self):
        text = render_result(_fake_result())
        assert "`metrics.exact_fraction`: 0.9123" in text
        assert "`nested.deep.value`: 3" in text
        assert "`winner`: tiv_aware" in text
        assert "curve" not in text

    def test_no_scalars_placeholder(self):
        result = ExperimentResult(
            experiment_id="figX", title="arrays only", data={"a": np.zeros(5)}
        )
        assert "no scalar headline values" in render_result(result)


class TestGenerateReport:
    def test_report_from_precomputed_results(self):
        results = {"fig99": _fake_result()}
        report = generate_report(ExperimentConfig(n_nodes=50), results=results)
        assert "# Regenerated experiment results" in report
        assert "50 nodes" in report
        assert "## fig99" in report

    def test_only_filter_applied(self):
        results = {"fig99": _fake_result(), "fig98": _fake_result()}
        report = generate_report(ExperimentConfig(n_nodes=50), results=results, only=["fig99"])
        assert report.count("## fig99") == 1
        assert "## fig98" not in report

    def test_report_runs_selected_experiments(self):
        config = ExperimentConfig(
            n_nodes=60, vivaldi_seconds=20, selection_runs=2, max_clients=20
        )
        report = generate_report(config, only=["fig19", "fig09"])
        assert "## fig19" in report
        assert "## fig09" in report
        assert "median_severity_shrunk" in report
