"""Tests for repro.experiments.config and the experiment context."""

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments.config import (
    COORDS_SYSTEMS,
    PAPER_SCALE,
    ExperimentConfig,
)
from repro.experiments.context import ExperimentContext


class TestExperimentConfig:
    def test_defaults_are_valid(self):
        config = ExperimentConfig()
        assert config.n_candidates >= 2
        assert config.n_meridian >= 2
        assert config.n_meridian_small >= 2

    def test_paper_scale_documented(self):
        assert PAPER_SCALE.n_nodes == 4000
        assert PAPER_SCALE.meridian_small_count == 200
        assert PAPER_SCALE.selection_runs == 5

    def test_derived_counts(self):
        config = ExperimentConfig(n_nodes=100, candidate_fraction=0.1, meridian_fraction=0.5)
        assert config.n_candidates == 10
        assert config.n_meridian == 50

    def test_small_meridian_capped(self):
        config = ExperimentConfig(n_nodes=30, meridian_small_count=100)
        assert config.n_meridian_small == 28

    def test_validation(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(n_nodes=4)
        with pytest.raises(ConfigError):
            ExperimentConfig(candidate_fraction=0.0)
        with pytest.raises(ConfigError):
            ExperimentConfig(meridian_fraction=1.0)
        with pytest.raises(ConfigError):
            ExperimentConfig(selection_runs=0)
        with pytest.raises(ConfigError):
            ExperimentConfig(vivaldi_seconds=0)
        with pytest.raises(ConfigError):
            ExperimentConfig(meridian_small_count=1)
        with pytest.raises(ConfigError):
            ExperimentConfig(kernels={"vivaldi": "turbo"})
        with pytest.raises(ConfigError):
            ExperimentConfig(kernels={"warp_drive": "batched"})

    def test_vivaldi_kernel_threads_to_embedding(self):
        """The configured kernel reaches the context's shared embedding."""
        for kernel in ("batched", "reference"):
            context = ExperimentContext(
                ExperimentConfig(
                    n_nodes=24, vivaldi_seconds=2, kernels={"vivaldi": kernel}
                )
            )
            assert context.vivaldi.kernel == kernel

    def test_coords_kernel_is_part_of_strawman_cache_addresses(self):
        """Both strawman artefact addresses carry the coords kernel.

        Mirrors the vivaldi-kernel contract: entries written by a different
        kernel (or by pre-kernel code) must read as misses, never as stale
        hits.
        """
        contexts = {
            kernel: ExperimentContext(
                ExperimentConfig(
                    n_nodes=24,
                    vivaldi_seconds=2,
                    kernels={system: kernel for system in COORDS_SYSTEMS},
                )
            )
            for kernel in ("batched", "reference")
        }
        from repro.artifacts import ArtifactKey

        ides_params = {
            k: ctx.artifact_params(ArtifactKey("ides")) for k, ctx in contexts.items()
        }
        lat_params = {
            k: ctx.artifact_params(ArtifactKey("lat")) for k, ctx in contexts.items()
        }
        assert ides_params["batched"] != ides_params["reference"]
        assert lat_params["batched"] != lat_params["reference"]
        assert ides_params["batched"]["kernel"] == "batched"
        assert lat_params["batched"]["coords_kernel"] == "batched"
        # The Vivaldi step kernel addresses the LAT artefact too (LAT
        # adjusts the converged embedding).
        assert "kernel" in lat_params["batched"]


class TestKernelsMapping:
    """The unified per-system kernel table (PR 6)."""

    def test_default_is_batched_everywhere(self):
        config = ExperimentConfig()
        for system in ("vivaldi", "gnp", "ides", "lat", "meridian"):
            assert config.kernel_for(system) == "batched"

    def test_per_system_override(self):
        config = ExperimentConfig(kernels={"ides": "reference"})
        assert config.kernel_for("ides") == "reference"
        assert config.kernel_for("vivaldi") == "batched"
        assert config.kernel_for("lat") == "batched"

    def test_default_entry_sets_the_fallback(self):
        config = ExperimentConfig(kernels={"default": "reference", "gnp": "batched"})
        assert config.kernel_for("gnp") == "batched"
        for system in ("vivaldi", "ides", "lat", "meridian"):
            assert config.kernel_for(system) == "reference"

    def test_kernels_normalized_to_sorted_tuple(self):
        # The field must stay hashable and order-independent: two configs
        # with the same mapping are the same config (and cache key).
        a = ExperimentConfig(kernels={"lat": "reference", "gnp": "reference"})
        b = ExperimentConfig(kernels={"gnp": "reference", "lat": "reference"})
        assert a == b
        assert isinstance(a.kernels, tuple)
        assert hash(a) == hash(b)

    def test_kernel_for_rejects_unknown_system(self):
        config = ExperimentConfig()
        with pytest.raises(ConfigError):
            config.kernel_for("warp_drive")
        with pytest.raises(ConfigError):
            config.kernel_for("default")

    def test_replace_preserves_the_table(self):
        config = ExperimentConfig(kernels={"vivaldi": "reference"})
        bumped = dataclasses.replace(config, seed=7)
        assert bumped.kernel_for("vivaldi") == "reference"
        assert bumped.seed == 7


class TestDeprecatedKernelKwargs:
    """The retired two-knob API warns but keeps working (PR 6 shim)."""

    def test_vivaldi_kernel_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="vivaldi_kernel"):
            config = ExperimentConfig(vivaldi_kernel="reference")
        assert config == ExperimentConfig(kernels={"vivaldi": "reference"})

    def test_coords_kernel_warns_and_maps_to_all_coords_systems(self):
        with pytest.warns(DeprecationWarning, match="coords_kernel"):
            config = ExperimentConfig(coords_kernel="reference")
        assert config == ExperimentConfig(
            kernels={system: "reference" for system in COORDS_SYSTEMS}
        )
        assert config.kernel_for("vivaldi") == "batched"

    def test_deprecated_bad_value_still_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigError):
                ExperimentConfig(vivaldi_kernel="turbo")
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigError):
                ExperimentConfig(coords_kernel="turbo")

    def test_conflicting_explicit_entry_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigError, match="conflict"):
                ExperimentConfig(
                    vivaldi_kernel="reference", kernels={"vivaldi": "batched"}
                )

    def test_agreeing_explicit_entry_accepted(self):
        with pytest.warns(DeprecationWarning):
            config = ExperimentConfig(
                vivaldi_kernel="reference", kernels={"vivaldi": "reference"}
            )
        assert config.kernel_for("vivaldi") == "reference"

    def test_legacy_attribute_reads_resolve(self):
        config = ExperimentConfig(kernels={"vivaldi": "reference"})
        assert config.vivaldi_kernel == "reference"
        assert config.coords_kernel == "batched"

    def test_ambiguous_coords_kernel_read_rejected(self):
        config = ExperimentConfig(kernels={"ides": "reference"})
        with pytest.raises(ConfigError, match="ambiguous"):
            config.coords_kernel

    def test_replace_does_not_retrigger_the_warning(self, recwarn):
        config = ExperimentConfig(kernels={"vivaldi": "reference"})
        dataclasses.replace(config, seed=3)
        assert not [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]


class TestExperimentContext:
    @pytest.fixture(scope="class")
    def context(self):
        return ExperimentContext(
            ExperimentConfig(n_nodes=60, vivaldi_seconds=20, selection_runs=2, max_clients=20)
        )

    def test_matrix_cached(self, context):
        assert context.matrix is context.matrix
        assert context.matrix.n_nodes == 60

    def test_clusters_available(self, context):
        assert context.ground_truth_clusters.shape == (60,)
        assert context.cluster_assignment.labels.shape == (60,)

    def test_severity_cached(self, context):
        assert context.severity is context.severity
        assert context.severity.n_nodes == 60

    def test_vivaldi_runs_configured_time(self, context):
        assert context.vivaldi.simulation_time == 20.0
        assert context.vivaldi is context.vivaldi

    def test_alert_built_from_vivaldi(self, context):
        ratios = context.alert.ratio_matrix
        assert ratios.shape == (60, 60)
        finite = ratios[np.isfinite(ratios)]
        assert finite.size > 0

    def test_selection_experiment_bound_to_config(self, context):
        experiment = context.selection_experiment()
        splits = experiment.splits()
        assert len(splits) == 2
        assert splits[0][0].size == context.config.n_candidates
