"""Tests for repro.experiments.config and the experiment context."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments.config import PAPER_SCALE, ExperimentConfig
from repro.experiments.context import ExperimentContext


class TestExperimentConfig:
    def test_defaults_are_valid(self):
        config = ExperimentConfig()
        assert config.n_candidates >= 2
        assert config.n_meridian >= 2
        assert config.n_meridian_small >= 2

    def test_paper_scale_documented(self):
        assert PAPER_SCALE.n_nodes == 4000
        assert PAPER_SCALE.meridian_small_count == 200
        assert PAPER_SCALE.selection_runs == 5

    def test_derived_counts(self):
        config = ExperimentConfig(n_nodes=100, candidate_fraction=0.1, meridian_fraction=0.5)
        assert config.n_candidates == 10
        assert config.n_meridian == 50

    def test_small_meridian_capped(self):
        config = ExperimentConfig(n_nodes=30, meridian_small_count=100)
        assert config.n_meridian_small == 28

    def test_validation(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(n_nodes=4)
        with pytest.raises(ConfigError):
            ExperimentConfig(candidate_fraction=0.0)
        with pytest.raises(ConfigError):
            ExperimentConfig(meridian_fraction=1.0)
        with pytest.raises(ConfigError):
            ExperimentConfig(selection_runs=0)
        with pytest.raises(ConfigError):
            ExperimentConfig(vivaldi_seconds=0)
        with pytest.raises(ConfigError):
            ExperimentConfig(meridian_small_count=1)
        with pytest.raises(ConfigError):
            ExperimentConfig(vivaldi_kernel="turbo")
        with pytest.raises(ConfigError):
            ExperimentConfig(coords_kernel="turbo")

    def test_vivaldi_kernel_threads_to_embedding(self):
        """The configured kernel reaches the context's shared embedding."""
        for kernel in ("batched", "reference"):
            context = ExperimentContext(
                ExperimentConfig(n_nodes=24, vivaldi_seconds=2, vivaldi_kernel=kernel)
            )
            assert context.vivaldi.kernel == kernel

    def test_coords_kernel_is_part_of_strawman_cache_addresses(self):
        """Both strawman artefact addresses carry the coords kernel.

        Mirrors the vivaldi_kernel contract: entries written by a different
        kernel (or by pre-kernel code) must read as misses, never as stale
        hits.
        """
        contexts = {
            kernel: ExperimentContext(
                ExperimentConfig(n_nodes=24, vivaldi_seconds=2, coords_kernel=kernel)
            )
            for kernel in ("batched", "reference")
        }
        from repro.artifacts import ArtifactKey

        ides_params = {
            k: ctx.artifact_params(ArtifactKey("ides")) for k, ctx in contexts.items()
        }
        lat_params = {
            k: ctx.artifact_params(ArtifactKey("lat")) for k, ctx in contexts.items()
        }
        assert ides_params["batched"] != ides_params["reference"]
        assert lat_params["batched"] != lat_params["reference"]
        assert ides_params["batched"]["kernel"] == "batched"
        assert lat_params["batched"]["coords_kernel"] == "batched"
        # The Vivaldi step kernel addresses the LAT artefact too (LAT
        # adjusts the converged embedding).
        assert "kernel" in lat_params["batched"]


class TestExperimentContext:
    @pytest.fixture(scope="class")
    def context(self):
        return ExperimentContext(
            ExperimentConfig(n_nodes=60, vivaldi_seconds=20, selection_runs=2, max_clients=20)
        )

    def test_matrix_cached(self, context):
        assert context.matrix is context.matrix
        assert context.matrix.n_nodes == 60

    def test_clusters_available(self, context):
        assert context.ground_truth_clusters.shape == (60,)
        assert context.cluster_assignment.labels.shape == (60,)

    def test_severity_cached(self, context):
        assert context.severity is context.severity
        assert context.severity.n_nodes == 60

    def test_vivaldi_runs_configured_time(self, context):
        assert context.vivaldi.simulation_time == 20.0
        assert context.vivaldi is context.vivaldi

    def test_alert_built_from_vivaldi(self, context):
        ratios = context.alert.ratio_matrix
        assert ratios.shape == (60, 60)
        finite = ratios[np.isfinite(ratios)]
        assert finite.size > 0

    def test_selection_experiment_bound_to_config(self, context):
        experiment = context.selection_experiment()
        splits = experiment.splits()
        assert len(splits) == 2
        assert splits[0][0].size == context.config.n_candidates
