"""Tests for the content-addressed artifact cache."""

import json

import numpy as np
import pytest

from repro.experiments.cache import (
    ArtifactCache,
    CacheStats,
    config_fingerprint,
    stable_key,
)
from repro.experiments.config import ExperimentConfig


@pytest.fixture()
def cache(tmp_path) -> ArtifactCache:
    return ArtifactCache(tmp_path / "cache")


class TestStableKey:
    def test_deterministic(self):
        params = {"preset": "ds2_like", "n_nodes": 64, "seed": 0}
        assert stable_key("dataset", params) == stable_key("dataset", dict(params))

    def test_order_independent(self):
        a = stable_key("dataset", {"x": 1, "y": 2})
        b = stable_key("dataset", {"y": 2, "x": 1})
        assert a == b

    def test_sensitive_to_kind_and_params(self):
        params = {"n_nodes": 64}
        assert stable_key("dataset", params) != stable_key("severity", params)
        assert stable_key("dataset", params) != stable_key("dataset", {"n_nodes": 65})

    def test_config_fingerprint_round_trips_fields(self):
        fingerprint = config_fingerprint(ExperimentConfig(n_nodes=64, seed=3))
        assert fingerprint["n_nodes"] == 64
        assert fingerprint["seed"] == 3
        assert "vivaldi_seconds" in fingerprint


class TestRoundTrip:
    def test_arrays_bit_for_bit(self, cache):
        rng = np.random.default_rng(0)
        delays = rng.uniform(1.0, 300.0, size=(24, 24))
        delays[2, 5] = np.nan
        delays[5, 2] = np.nan
        counts = rng.integers(0, 40, size=(24, 24))
        cache.store("dataset", {"n": 24}, {"delays": delays, "counts": counts})
        entry = cache.load("dataset", {"n": 24})
        assert entry is not None
        assert np.array_equal(entry.arrays["delays"], delays, equal_nan=True)
        assert np.array_equal(entry.arrays["counts"], counts)
        assert entry.arrays["delays"].dtype == delays.dtype

    def test_meta_round_trip(self, cache):
        cache.store(
            "clusters",
            {"n": 8},
            {"labels": np.zeros(8, dtype=int)},
            meta={"n_clusters": 3, "heads": [1, 2, 3], "cluster_radius": 12.5},
        )
        entry = cache.load("clusters", {"n": 8})
        assert entry.meta["n_clusters"] == 3
        assert entry.meta["heads"] == [1, 2, 3]
        assert entry.meta["cluster_radius"] == pytest.approx(12.5)

    def test_numpy_scalars_in_params_and_meta(self, cache):
        cache.store(
            "x",
            {"n": np.int64(4)},
            {"v": np.arange(3)},
            meta={"mean": np.float64(1.5)},
        )
        # numpy-typed and python-typed params are semantically equal and
        # must address the same entry.
        assert stable_key("x", {"n": np.int64(4)}) == stable_key("x", {"n": 4})
        entry = cache.load("x", {"n": 4})
        assert entry is not None
        assert entry.meta["mean"] == 1.5


class TestMissesAndCorruption:
    def test_missing_entry_is_miss(self, cache):
        assert cache.load("dataset", {"n": 1}) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_corrupted_npz_is_evicted_and_missed(self, cache, tmp_path):
        cache.store("dataset", {"n": 2}, {"delays": np.eye(3)})
        npz_files = list((tmp_path / "cache" / "dataset").glob("*.npz"))
        assert len(npz_files) == 1
        npz_files[0].write_bytes(b"this is not a numpy archive")
        assert cache.load("dataset", {"n": 2}) is None
        # The broken entry is gone, so the next store/load cycle works again.
        assert not npz_files[0].exists()
        cache.store("dataset", {"n": 2}, {"delays": np.eye(3)})
        assert cache.load("dataset", {"n": 2}) is not None

    def test_corrupted_meta_is_miss(self, cache, tmp_path):
        cache.store("dataset", {"n": 3}, {"delays": np.eye(3)})
        meta_files = list((tmp_path / "cache" / "dataset").glob("*.json"))
        meta_files[0].write_text("{not json", encoding="utf-8")
        assert cache.load("dataset", {"n": 3}) is None

    def test_meta_kind_mismatch_is_miss(self, cache, tmp_path):
        cache.store("dataset", {"n": 4}, {"delays": np.eye(3)})
        meta_files = list((tmp_path / "cache" / "dataset").glob("*.json"))
        payload = json.loads(meta_files[0].read_text(encoding="utf-8"))
        payload["kind"] = "something_else"
        meta_files[0].write_text(json.dumps(payload), encoding="utf-8")
        assert cache.load("dataset", {"n": 4}) is None

    def test_evict_is_idempotent(self, cache):
        cache.store("dataset", {"n": 5}, {"delays": np.eye(2)})
        cache.evict("dataset", {"n": 5})
        cache.evict("dataset", {"n": 5})
        assert not cache.contains("dataset", {"n": 5})


class TestStats:
    def test_counters(self, cache):
        cache.load("a", {"i": 0})
        cache.store("a", {"i": 0}, {"v": np.zeros(2)})
        cache.load("a", {"i": 0})
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.stores) == (1, 1, 1)

    def test_snapshot_and_since(self):
        stats = CacheStats(hits=5, misses=2, stores=1)
        earlier = stats.snapshot()
        stats.hits += 3
        delta = stats.since(earlier)
        assert (delta.hits, delta.misses, delta.stores) == (3, 0, 0)
        assert delta.as_dict() == {"hits": 3, "misses": 0, "stores": 0}
