"""Crash/timeout supervision of the frontier scheduler.

These tests inject real worker deaths (``os._exit`` inside a forked pool
worker — the same signature as a segfault or an OOM kill) and overlong
tasks, then check the scheduler's contract: transient crashes are retried
with the run completing normally, poison tasks are isolated into the
ordinary failure-cascade path after ``max_retries`` attributed failures,
and every retry/rebuild is recorded in the run report.

The pool uses the ``fork`` start method on Linux, so monkeypatching the
experiment registry in the parent is visible inside the workers.
"""

import json
import os
import time

import pytest

from repro.artifacts.graph import resolve_plan
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import (
    FrontierScheduler,
    plan_artifact_tasks,
    plan_figure_addresses,
    run_experiments,
)
from repro.experiments.result import ExperimentResult

TINY = ExperimentConfig(
    n_nodes=48,
    vivaldi_seconds=8,
    selection_runs=1,
    max_clients=16,
    meridian_small_count=10,
)


def _stub_result(experiment_id: str) -> ExperimentResult:
    return ExperimentResult(
        experiment_id=experiment_id,
        title="supervision stub",
        data={"value": 1.0},
    )


def _crash_once_runner(sentinel: str):
    """A figure runner that hard-kills its worker on the first attempt."""

    def _runner(config=None, *, context=None, **kwargs):
        if not os.path.exists(sentinel):
            with open(sentinel, "w", encoding="utf-8") as handle:
                handle.write("crashed")
            os._exit(1)  # worker death: BrokenProcessPool, not an exception
        return _stub_result("fig03")

    return _runner


def _always_crash_runner(config=None, *, context=None, **kwargs):
    os._exit(1)


def _hang_runner(config=None, *, context=None, **kwargs):
    time.sleep(300)
    return _stub_result("fig03")


class TestCrashRetry:
    def test_worker_crash_is_retried_and_run_completes(self, tmp_path, monkeypatch):
        from repro.experiments import registry

        sentinel = str(tmp_path / "crashed-once")
        monkeypatch.setitem(
            registry._REGISTRY,
            "fig03",
            registry.RegisteredExperiment(
                _crash_once_runner(sentinel), frozenset({"matrix"})
            ),
        )
        report_path = tmp_path / "BENCH_experiments.json"
        outcome = run_experiments(
            TINY,
            only=["fig03", "fig02"],
            jobs=2,
            cache_dir=tmp_path / "artifacts",
            report_path=report_path,
        )
        # The run completed: the crashed figure was re-run and succeeded,
        # and the innocent bystander survived the pool rebuild.
        assert set(outcome.results) == {"fig03", "fig02"}
        assert outcome.failures == {}
        assert outcome.report.pool_rebuilds >= 1
        assert outcome.report.figure_retries >= 1
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        by_id = {entry["id"]: entry for entry in payload["experiments"]}
        assert by_id["fig03"]["status"] == "ok"
        assert by_id["fig03"].get("retries", 0) >= 1
        supervision = payload["totals"]["supervision"]
        assert supervision["pool_rebuilds"] >= 1
        assert supervision["figure_retries"] >= 1

    def test_poison_task_is_isolated_after_max_retries(self, tmp_path, monkeypatch):
        from repro.experiments import registry

        monkeypatch.setitem(
            registry._REGISTRY,
            "fig03",
            registry.RegisteredExperiment(
                _always_crash_runner, frozenset({"matrix"})
            ),
        )
        report_path = tmp_path / "BENCH_experiments.json"
        with pytest.raises(ExperimentError, match="fig03"):
            run_experiments(
                TINY,
                only=["fig03", "fig02"],
                jobs=2,
                cache_dir=tmp_path / "artifacts",
                report_path=report_path,
            )
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        by_id = {entry["id"]: entry for entry in payload["experiments"]}
        # The poison figure was isolated through the ordinary failure path
        # after exhausting its attempts; the healthy figure still ran.
        assert by_id["fig03"]["status"] == "error"
        assert "isolated" in by_id["fig03"]["error"]
        assert by_id["fig02"]["status"] == "ok"
        assert payload["totals"]["supervision"]["pool_rebuilds"] >= 3

    def test_clean_run_reports_zero_supervision_activity(self, tmp_path):
        outcome = run_experiments(
            TINY, only=["fig02"], jobs=2, cache_dir=tmp_path / "artifacts"
        )
        assert outcome.report.pool_rebuilds == 0
        assert outcome.report.artifact_retries == 0
        assert outcome.report.figure_retries == 0
        payload = outcome.report.as_dict()
        assert payload["totals"]["supervision"] == {
            "artifact_retries": 0,
            "figure_retries": 0,
            "pool_rebuilds": 0,
        }
        # Per-record "retries" keys only appear when nonzero.
        assert all("retries" not in entry for entry in payload["experiments"])


class TestTaskTimeout:
    def _figure_only_scheduler(self, cache_dir, **kwargs) -> FrontierScheduler:
        plan = resolve_plan(TINY, ["fig03"])
        return FrontierScheduler(
            tasks=plan_artifact_tasks(plan, tag=""),
            configs={"": TINY},
            figure_grid=[("", "fig03")],
            figure_needs={("", "fig03"): plan_figure_addresses(plan, "fig03")},
            cache_dir=str(cache_dir),
            jobs=2,
            **kwargs,
        )

    def test_overrunning_task_is_attributed_and_isolated(self, tmp_path, monkeypatch):
        from repro.experiments import registry

        # Warm the artifact cache first so the supervised run only has the
        # hanging figure task in flight (a clean attribution scenario).
        cache_dir = tmp_path / "artifacts"
        run_experiments(TINY, only=["fig03"], jobs=2, cache_dir=cache_dir)

        monkeypatch.setitem(
            registry._REGISTRY,
            "fig03",
            registry.RegisteredExperiment(_hang_runner, frozenset({"matrix"})),
        )
        scheduler = self._figure_only_scheduler(
            cache_dir, max_retries=0, retry_backoff=0.0, task_timeout=1.0
        )
        start = time.monotonic()
        scheduler.execute()
        elapsed = time.monotonic() - start
        record = scheduler.figure_records[("", "fig03")]
        assert record.status == "error"
        assert "timed out" in record.error
        assert scheduler.pool_rebuilds >= 1
        # The hung worker was torn down, not waited out.
        assert elapsed < 60

    def test_invalid_supervision_parameters_rejected(self, tmp_path):
        with pytest.raises(ExperimentError, match="max_retries"):
            self._figure_only_scheduler(tmp_path, max_retries=-1)
        with pytest.raises(ExperimentError, match="task_timeout"):
            self._figure_only_scheduler(tmp_path, task_timeout=0)
        with pytest.raises(ExperimentError, match="retry_backoff"):
            self._figure_only_scheduler(tmp_path, retry_backoff=-0.1)
