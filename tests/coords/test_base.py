"""Tests for repro.coords.base."""

import numpy as np
import pytest

from repro.coords.base import MatrixPredictor
from repro.errors import EmbeddingError


class TestMatrixPredictor:
    def test_requires_square(self):
        with pytest.raises(EmbeddingError):
            MatrixPredictor(np.zeros((2, 3)))

    def test_predict_and_matrix(self):
        data = np.array([[0.0, 5.0], [5.0, 0.0]])
        predictor = MatrixPredictor(data)
        assert predictor.n_nodes == 2
        assert predictor.predict(0, 1) == 5.0
        assert np.array_equal(predictor.predicted_matrix(), data)

    def test_diagonal_forced_zero(self):
        data = np.array([[9.0, 5.0], [5.0, 9.0]])
        predictor = MatrixPredictor(data)
        assert predictor.predict(0, 0) == 0.0

    def test_input_copied(self):
        data = np.array([[0.0, 5.0], [5.0, 0.0]])
        predictor = MatrixPredictor(data)
        data[0, 1] = 99.0
        assert predictor.predict(0, 1) == 5.0

    def test_prediction_ratios(self):
        predicted = np.array([[0.0, 5.0, 8.0], [5.0, 0.0, 12.0], [8.0, 12.0, 0.0]])
        measured = np.array([[0.0, 10.0, np.nan], [10.0, 0.0, 12.0], [np.nan, 12.0, 0.0]])
        predictor = MatrixPredictor(predicted)
        ratios = predictor.prediction_ratios(measured)
        assert ratios[0, 1] == pytest.approx(0.5)
        assert ratios[1, 2] == pytest.approx(1.0)
        assert np.isnan(ratios[0, 2])
        assert np.isnan(ratios[0, 0])

    def test_prediction_ratios_shape_mismatch(self):
        predictor = MatrixPredictor(np.zeros((2, 2)))
        with pytest.raises(EmbeddingError):
            predictor.prediction_ratios(np.zeros((3, 3)))

    def test_default_predicted_matrix_loop(self):
        """The DelayPredictor default implementation loops over predict()."""
        from repro.coords.base import DelayPredictor

        class Constant(DelayPredictor):
            @property
            def n_nodes(self):
                return 3

            def predict(self, i, j):
                return 0.0 if i == j else 7.0

        matrix = Constant().predicted_matrix()
        assert matrix.shape == (3, 3)
        assert matrix[0, 1] == 7.0
        assert matrix[1, 0] == 7.0
        assert np.allclose(np.diag(matrix), 0.0)
