"""Tests for repro.coords.vivaldi."""

import numpy as np
import pytest

from repro.coords.vivaldi import VivaldiConfig, VivaldiSystem, embed_vivaldi
from repro.errors import EmbeddingError
from repro.stats.summary import median_absolute_error, relative_errors


class TestVivaldiConfig:
    def test_defaults_match_paper(self):
        config = VivaldiConfig()
        assert config.dimension == 5
        assert config.n_neighbors == 32

    def test_invalid_dimension(self):
        with pytest.raises(EmbeddingError):
            VivaldiConfig(dimension=0)

    def test_invalid_constants(self):
        with pytest.raises(EmbeddingError):
            VivaldiConfig(cc=0.0)
        with pytest.raises(EmbeddingError):
            VivaldiConfig(ce=1.5)

    def test_invalid_probe_rate(self):
        with pytest.raises(EmbeddingError):
            VivaldiConfig(probes_per_node_per_second=0)


class TestVivaldiSystem:
    def test_initial_state(self, euclidean_matrix):
        system = VivaldiSystem(euclidean_matrix, VivaldiConfig(n_neighbors=8), rng=0)
        assert system.n_nodes == euclidean_matrix.n_nodes
        assert system.coordinates.shape == (40, 5)
        assert system.simulation_time == 0.0
        assert all(len(nbrs) == 8 for nbrs in system.neighbors)

    def test_neighbors_exclude_self(self, euclidean_matrix):
        system = VivaldiSystem(euclidean_matrix, VivaldiConfig(n_neighbors=8), rng=0)
        for i, nbrs in enumerate(system.neighbors):
            assert i not in nbrs

    def test_step_advances_time_and_returns_movement(self, euclidean_matrix):
        system = VivaldiSystem(euclidean_matrix, VivaldiConfig(n_neighbors=8), rng=0)
        movement = system.step()
        assert system.simulation_time == 1.0
        assert movement.shape == (40,)
        assert np.all(movement >= 0)

    def test_run_reduces_error_on_euclidean_data(self, euclidean_matrix):
        system = VivaldiSystem(euclidean_matrix, VivaldiConfig(n_neighbors=16), rng=1)
        initial = median_absolute_error(euclidean_matrix.values, system.predicted_matrix())
        system.run(80)
        final = median_absolute_error(euclidean_matrix.values, system.predicted_matrix())
        assert final < initial
        rel = relative_errors(euclidean_matrix.values, system.predicted_matrix())
        assert np.median(rel) < 0.25  # embeddable data should embed well

    def test_error_estimates_shrink(self, euclidean_matrix):
        system = VivaldiSystem(euclidean_matrix, VivaldiConfig(n_neighbors=16), rng=2)
        system.run(60)
        assert np.median(system.errors) < 1.0

    def test_predict_symmetric_and_zero_diagonal(self, euclidean_matrix):
        system = embed_vivaldi(euclidean_matrix, seconds=10, rng=3)
        assert system.predict(3, 3) == 0.0
        assert system.predict(1, 2) == pytest.approx(system.predict(2, 1))

    def test_predicted_matrix_matches_predict(self, euclidean_matrix):
        system = embed_vivaldi(euclidean_matrix, seconds=10, rng=3)
        matrix = system.predicted_matrix()
        assert matrix[4, 7] == pytest.approx(system.predict(4, 7))
        assert np.allclose(np.diag(matrix), 0.0)

    def test_prediction_ratio_matrix(self, small_internet_matrix):
        system = embed_vivaldi(small_internet_matrix, seconds=20, rng=4)
        ratios = system.prediction_ratio_matrix()
        assert np.all(np.isnan(np.diag(ratios)))
        finite = ratios[np.isfinite(ratios)]
        assert np.all(finite >= 0)

    def test_reproducible_with_seed(self, euclidean_matrix):
        a = embed_vivaldi(euclidean_matrix, seconds=15, rng=9).coordinates
        b = embed_vivaldi(euclidean_matrix, seconds=15, rng=9).coordinates
        assert np.array_equal(a, b)

    def test_negative_run_raises(self, euclidean_matrix):
        with pytest.raises(EmbeddingError):
            embed_vivaldi(euclidean_matrix, seconds=-1)


class TestSetNeighbors:
    def test_explicit_neighbors_used(self, euclidean_matrix):
        explicit = [[(i + 1) % 40, (i + 2) % 40] for i in range(40)]
        system = VivaldiSystem(euclidean_matrix, VivaldiConfig(n_neighbors=2), rng=0, neighbors=explicit)
        assert system.neighbors == explicit

    def test_wrong_length_raises(self, euclidean_matrix):
        with pytest.raises(EmbeddingError):
            VivaldiSystem(euclidean_matrix, neighbors=[[1]])

    def test_self_neighbor_raises(self, euclidean_matrix):
        bad = [[i] for i in range(40)]
        with pytest.raises(EmbeddingError):
            VivaldiSystem(euclidean_matrix, neighbors=bad)

    def test_empty_list_raises(self, euclidean_matrix):
        bad = [[] for _ in range(40)]
        with pytest.raises(EmbeddingError):
            VivaldiSystem(euclidean_matrix, neighbors=bad)

    def test_out_of_range_raises(self, euclidean_matrix):
        bad = [[99] for _ in range(40)]
        with pytest.raises(EmbeddingError):
            VivaldiSystem(euclidean_matrix, neighbors=bad)

    def test_missing_delays_are_skipped(self):
        import numpy as np
        from repro.delayspace.matrix import DelayMatrix

        delays = np.array(
            [
                [0.0, 10.0, np.nan],
                [10.0, 0.0, 12.0],
                [np.nan, 12.0, 0.0],
            ]
        )
        matrix = DelayMatrix(delays, symmetrize=False)
        system = VivaldiSystem(matrix, VivaldiConfig(n_neighbors=2, dimension=2), rng=0)
        system.run(20)  # must not raise despite the missing edge
        assert np.all(np.isfinite(system.coordinates))
