"""Tests for repro.coords.vivaldi."""

import numpy as np
import pytest

from repro.coords.vivaldi import VivaldiConfig, VivaldiSystem, embed_vivaldi
from repro.errors import EmbeddingError
from repro.stats.summary import median_absolute_error, relative_errors


class TestVivaldiConfig:
    def test_defaults_match_paper(self):
        config = VivaldiConfig()
        assert config.dimension == 5
        assert config.n_neighbors == 32

    def test_invalid_dimension(self):
        with pytest.raises(EmbeddingError):
            VivaldiConfig(dimension=0)

    def test_invalid_constants(self):
        with pytest.raises(EmbeddingError):
            VivaldiConfig(cc=0.0)
        with pytest.raises(EmbeddingError):
            VivaldiConfig(ce=1.5)

    def test_invalid_probe_rate(self):
        with pytest.raises(EmbeddingError):
            VivaldiConfig(probes_per_node_per_second=0)


class TestVivaldiSystem:
    def test_initial_state(self, euclidean_matrix):
        system = VivaldiSystem(euclidean_matrix, VivaldiConfig(n_neighbors=8), rng=0)
        assert system.n_nodes == euclidean_matrix.n_nodes
        assert system.coordinates.shape == (40, 5)
        assert system.simulation_time == 0.0
        assert all(len(nbrs) == 8 for nbrs in system.neighbors)

    def test_neighbors_exclude_self(self, euclidean_matrix):
        system = VivaldiSystem(euclidean_matrix, VivaldiConfig(n_neighbors=8), rng=0)
        for i, nbrs in enumerate(system.neighbors):
            assert i not in nbrs

    def test_step_advances_time_and_returns_movement(self, euclidean_matrix):
        system = VivaldiSystem(euclidean_matrix, VivaldiConfig(n_neighbors=8), rng=0)
        movement = system.step()
        assert system.simulation_time == 1.0
        assert movement.shape == (40,)
        assert np.all(movement >= 0)

    def test_run_reduces_error_on_euclidean_data(self, euclidean_matrix):
        system = VivaldiSystem(euclidean_matrix, VivaldiConfig(n_neighbors=16), rng=1)
        initial = median_absolute_error(euclidean_matrix.values, system.predicted_matrix())
        system.run(80)
        final = median_absolute_error(euclidean_matrix.values, system.predicted_matrix())
        assert final < initial
        rel = relative_errors(euclidean_matrix.values, system.predicted_matrix())
        assert np.median(rel) < 0.25  # embeddable data should embed well

    def test_error_estimates_shrink(self, euclidean_matrix):
        system = VivaldiSystem(euclidean_matrix, VivaldiConfig(n_neighbors=16), rng=2)
        system.run(60)
        assert np.median(system.errors) < 1.0

    def test_predict_symmetric_and_zero_diagonal(self, euclidean_matrix):
        system = embed_vivaldi(euclidean_matrix, seconds=10, rng=3)
        assert system.predict(3, 3) == 0.0
        assert system.predict(1, 2) == pytest.approx(system.predict(2, 1))

    def test_predicted_matrix_matches_predict(self, euclidean_matrix):
        system = embed_vivaldi(euclidean_matrix, seconds=10, rng=3)
        matrix = system.predicted_matrix()
        assert matrix[4, 7] == pytest.approx(system.predict(4, 7))
        assert np.allclose(np.diag(matrix), 0.0)

    def test_prediction_ratio_matrix(self, small_internet_matrix):
        system = embed_vivaldi(small_internet_matrix, seconds=20, rng=4)
        ratios = system.prediction_ratio_matrix()
        assert np.all(np.isnan(np.diag(ratios)))
        finite = ratios[np.isfinite(ratios)]
        assert np.all(finite >= 0)

    def test_reproducible_with_seed(self, euclidean_matrix):
        a = embed_vivaldi(euclidean_matrix, seconds=15, rng=9).coordinates
        b = embed_vivaldi(euclidean_matrix, seconds=15, rng=9).coordinates
        assert np.array_equal(a, b)

    def test_negative_run_raises(self, euclidean_matrix):
        with pytest.raises(EmbeddingError):
            embed_vivaldi(euclidean_matrix, seconds=-1)


class TestKernels:
    """Batched vs reference kernel: equivalence, determinism, edge cases."""

    def test_unknown_kernel_raises(self, euclidean_matrix):
        with pytest.raises(EmbeddingError):
            VivaldiSystem(euclidean_matrix, rng=0, kernel="turbo")

    def test_kernel_property(self, euclidean_matrix):
        assert VivaldiSystem(euclidean_matrix, rng=0).kernel == "batched"
        assert (
            VivaldiSystem(euclidean_matrix, rng=0, kernel="reference").kernel
            == "reference"
        )

    @pytest.mark.parametrize("kernel", ["batched", "reference"])
    def test_per_seed_determinism(self, euclidean_matrix, kernel):
        runs = [
            embed_vivaldi(euclidean_matrix, seconds=12, rng=11, kernel=kernel)
            for _ in range(2)
        ]
        assert np.array_equal(runs[0].coordinates, runs[1].coordinates)
        assert np.array_equal(runs[0].errors, runs[1].errors)

    def test_kernels_converge_equivalently(self, small_internet_matrix):
        """Both kernels reach statistically indistinguishable embeddings.

        The batched kernel applies each probe round as a Jacobi sweep, the
        reference kernel as a Gauss-Seidel sweep, so trajectories differ —
        but the converged median relative error must agree within a few
        percent (absolute, on data with residual error ~0.15-0.2).
        """
        medians = {}
        for kernel in ("batched", "reference"):
            errors = []
            for seed in range(3):
                system = embed_vivaldi(
                    small_internet_matrix, seconds=100, rng=seed, kernel=kernel
                )
                rel = relative_errors(
                    small_internet_matrix.values, system.predicted_matrix()
                )
                errors.append(np.median(rel))
            medians[kernel] = float(np.mean(errors))
        assert medians["batched"] < 0.45
        assert medians["reference"] < 0.45
        assert abs(medians["batched"] - medians["reference"]) < 0.05

    def test_batched_reduces_error_on_euclidean_data(self, euclidean_matrix):
        system = VivaldiSystem(euclidean_matrix, VivaldiConfig(n_neighbors=16), rng=1)
        initial = median_absolute_error(
            euclidean_matrix.values, system.predicted_matrix()
        )
        system.run(80)
        final = median_absolute_error(euclidean_matrix.values, system.predicted_matrix())
        assert final < initial
        rel = relative_errors(euclidean_matrix.values, system.predicted_matrix())
        assert np.median(rel) < 0.25

    def test_batched_handles_ragged_neighbor_lists(self, euclidean_matrix):
        ragged = [
            [(i + 1) % 40] if i % 2 else [(i + 1) % 40, (i + 2) % 40, (i + 5) % 40]
            for i in range(40)
        ]
        system = VivaldiSystem(euclidean_matrix, rng=0, neighbors=ragged)
        system.run(5)
        assert np.all(np.isfinite(system.coordinates))
        # Probe targets can only come from each node's own list: nodes with
        # a single neighbour must never have moved toward anyone else, which
        # the padded-array gather guarantees by construction (picks are
        # drawn below each row's true length).
        assert system.neighbors == ragged

    def test_batched_handles_coincident_coordinates(self, euclidean_matrix):
        system = VivaldiSystem(euclidean_matrix, VivaldiConfig(n_neighbors=4), rng=0)
        # Force every node onto the same point: all pairwise distances are
        # zero, so the kernel must take the random-push branch.
        system.restore_state(
            np.zeros_like(system.coordinates), system.errors, simulation_time=0.0
        )
        movement = system.step()
        assert np.all(np.isfinite(system.coordinates))
        assert np.any(movement > 0)

    @pytest.mark.parametrize("kernel", ["batched", "reference"])
    def test_missing_delays_are_skipped(self, kernel):
        from repro.delayspace.matrix import DelayMatrix

        delays = np.array(
            [
                [0.0, 10.0, np.nan],
                [10.0, 0.0, 12.0],
                [np.nan, 12.0, 0.0],
            ]
        )
        matrix = DelayMatrix(delays, symmetrize=False)
        system = VivaldiSystem(
            matrix, VivaldiConfig(n_neighbors=2, dimension=2), rng=0, kernel=kernel
        )
        system.run(20)
        assert np.all(np.isfinite(system.coordinates))
        assert np.all(np.isfinite(system.errors))

    def test_multiple_probes_per_second(self, euclidean_matrix):
        config = VivaldiConfig(n_neighbors=8, probes_per_node_per_second=3)
        system = VivaldiSystem(euclidean_matrix, config, rng=5)
        movement = system.step()
        assert system.simulation_time == 1.0
        assert np.any(movement > 0)

    def test_predict_edges_matches_predict(self, euclidean_matrix):
        system = embed_vivaldi(euclidean_matrix, seconds=10, rng=3)
        rows = np.array([0, 3, 7, 5])
        cols = np.array([1, 2, 7, 30])
        batch = system.predict_edges(rows, cols)
        expected = [system.predict(int(i), int(j)) for i, j in zip(rows, cols)]
        assert np.allclose(batch, expected)


class TestSetNeighbors:
    def test_explicit_neighbors_used(self, euclidean_matrix):
        explicit = [[(i + 1) % 40, (i + 2) % 40] for i in range(40)]
        system = VivaldiSystem(euclidean_matrix, VivaldiConfig(n_neighbors=2), rng=0, neighbors=explicit)
        assert system.neighbors == explicit

    def test_wrong_length_raises(self, euclidean_matrix):
        with pytest.raises(EmbeddingError):
            VivaldiSystem(euclidean_matrix, neighbors=[[1]])

    def test_self_neighbor_raises(self, euclidean_matrix):
        bad = [[i] for i in range(40)]
        with pytest.raises(EmbeddingError):
            VivaldiSystem(euclidean_matrix, neighbors=bad)

    def test_empty_list_raises(self, euclidean_matrix):
        bad = [[] for _ in range(40)]
        with pytest.raises(EmbeddingError):
            VivaldiSystem(euclidean_matrix, neighbors=bad)

    def test_out_of_range_raises(self, euclidean_matrix):
        bad = [[99] for _ in range(40)]
        with pytest.raises(EmbeddingError):
            VivaldiSystem(euclidean_matrix, neighbors=bad)

    def test_missing_delays_are_skipped(self):
        import numpy as np
        from repro.delayspace.matrix import DelayMatrix

        delays = np.array(
            [
                [0.0, 10.0, np.nan],
                [10.0, 0.0, 12.0],
                [np.nan, 12.0, 0.0],
            ]
        )
        matrix = DelayMatrix(delays, symmetrize=False)
        system = VivaldiSystem(matrix, VivaldiConfig(n_neighbors=2, dimension=2), rng=0)
        system.run(20)  # must not raise despite the missing edge
        assert np.all(np.isfinite(system.coordinates))
