"""Tests for repro.coords.ides."""

import numpy as np
import pytest

from repro.coords.ides import IDESConfig, IDESCoordinates, fit_ides
from repro.errors import EmbeddingError
from repro.stats.summary import median_absolute_error


class TestIDESConfig:
    def test_defaults(self):
        config = IDESConfig()
        assert config.dimension == 10
        assert config.method == "svd"

    def test_invalid_dimension(self):
        with pytest.raises(EmbeddingError):
            IDESConfig(dimension=0)

    def test_invalid_method(self):
        with pytest.raises(EmbeddingError):
            IDESConfig(method="pca")

    def test_invalid_iterations(self):
        with pytest.raises(EmbeddingError):
            IDESConfig(nmf_iterations=0)


class TestIDESCoordinates:
    def test_shape_mismatch_raises(self):
        with pytest.raises(EmbeddingError):
            IDESCoordinates(np.zeros((3, 2)), np.zeros((4, 2)))

    def test_predict_nonnegative_and_zero_diagonal(self, small_internet_matrix):
        coords = fit_ides(small_internet_matrix, IDESConfig(dimension=8))
        assert coords.predict(0, 0) == 0.0
        assert coords.predict(0, 1) >= 0.0
        assert coords.dimension == 8

    def test_predicted_matrix_matches_predict(self, small_internet_matrix):
        coords = fit_ides(small_internet_matrix, IDESConfig(dimension=8))
        matrix = coords.predicted_matrix()
        assert matrix[2, 5] == pytest.approx(coords.predict(2, 5))
        assert np.allclose(np.diag(matrix), 0.0)


class TestFitIdes:
    def test_svd_accuracy_reasonable(self, small_internet_matrix):
        coords = fit_ides(small_internet_matrix, IDESConfig(dimension=10, method="svd"))
        error = median_absolute_error(small_internet_matrix.values, coords.predicted_matrix())
        assert error < small_internet_matrix.median_delay()

    def test_nmf_runs_and_is_nonnegative(self, small_internet_matrix):
        coords = fit_ides(
            small_internet_matrix,
            IDESConfig(dimension=6, method="nmf", nmf_iterations=60),
            rng=0,
        )
        predicted = coords.predicted_matrix()
        assert np.all(predicted >= 0)
        assert np.all(np.isfinite(predicted))

    def test_nmf_reproducible_with_seed(self, small_internet_matrix):
        config = IDESConfig(dimension=4, method="nmf", nmf_iterations=30)
        a = fit_ides(small_internet_matrix, config, rng=7).predicted_matrix()
        b = fit_ides(small_internet_matrix, config, rng=7).predicted_matrix()
        assert np.allclose(a, b)

    def test_higher_rank_fits_better(self, small_internet_matrix):
        low = fit_ides(small_internet_matrix, IDESConfig(dimension=2))
        high = fit_ides(small_internet_matrix, IDESConfig(dimension=20))
        measured = small_internet_matrix.values
        assert median_absolute_error(measured, high.predicted_matrix()) <= median_absolute_error(
            measured, low.predicted_matrix()
        )

    def test_can_represent_tiv(self):
        """IDES predictions are not bound by the triangle inequality."""
        from repro.coords.simulation import three_node_tiv_matrix

        matrix = three_node_tiv_matrix()
        coords = fit_ides(matrix, IDESConfig(dimension=3))
        predicted = coords.predicted_matrix()
        # A perfect rank-3 factorisation reproduces the TIV exactly.
        assert predicted[0, 2] > predicted[0, 1] + predicted[1, 2]

    def test_handles_missing_values(self):
        from repro.delayspace.matrix import DelayMatrix

        delays = np.array(
            [
                [0.0, 10.0, np.nan, 30.0],
                [10.0, 0.0, 12.0, 28.0],
                [np.nan, 12.0, 0.0, 26.0],
                [30.0, 28.0, 26.0, 0.0],
            ]
        )
        matrix = DelayMatrix(delays, symmetrize=False)
        coords = fit_ides(matrix, IDESConfig(dimension=3))
        assert np.all(np.isfinite(coords.predicted_matrix()))


class TestKernels:
    """Batched vs reference IDES kernels: float-level equivalence."""

    def test_unknown_kernel_raises(self, small_internet_matrix):
        with pytest.raises(EmbeddingError):
            fit_ides(small_internet_matrix, kernel="turbo")

    @pytest.mark.parametrize("method", ["svd", "nmf"])
    def test_kernels_agree_to_float_accuracy(self, small_internet_matrix, method):
        """The multi-RHS projection solves the same least-squares systems.

        Same landmark selection (identical RNG stream), same factor
        matrices; LAPACK's multi-column path may round differently in the
        last ulps, hence allclose rather than array_equal.
        """
        batched = fit_ides(
            small_internet_matrix, IDESConfig(method=method), rng=7, kernel="batched"
        )
        reference = fit_ides(
            small_internet_matrix, IDESConfig(method=method), rng=7, kernel="reference"
        )
        assert batched.landmarks == reference.landmarks
        assert np.allclose(batched.outgoing, reference.outgoing, atol=1e-9)
        assert np.allclose(batched.incoming, reference.incoming, atol=1e-9)

    @pytest.mark.parametrize("kernel", ["batched", "reference"])
    def test_landmarks_keep_exact_landmark_vectors(self, small_internet_matrix, kernel):
        """Regression: the host projection must not touch landmark rows."""
        landmarks = list(range(0, 40, 4))
        coords = fit_ides(
            small_internet_matrix, IDESConfig(), rng=3, landmarks=landmarks, kernel=kernel
        )
        rerun = fit_ides(
            small_internet_matrix, IDESConfig(), rng=3, landmarks=landmarks, kernel=kernel
        )
        assert coords.landmarks == tuple(landmarks)
        assert np.array_equal(coords.outgoing[landmarks], rerun.outgoing[landmarks])
        assert np.array_equal(coords.incoming[landmarks], rerun.incoming[landmarks])

    @pytest.mark.parametrize("kernel", ["batched", "reference"])
    def test_per_seed_determinism(self, small_internet_matrix, kernel):
        a = fit_ides(small_internet_matrix, IDESConfig(method="nmf"), rng=5, kernel=kernel)
        b = fit_ides(small_internet_matrix, IDESConfig(method="nmf"), rng=5, kernel=kernel)
        assert np.array_equal(a.outgoing, b.outgoing)
        assert np.array_equal(a.incoming, b.incoming)

    def test_nmf_kernels_stay_nonnegative(self, small_internet_matrix):
        for kernel in ("batched", "reference"):
            coords = fit_ides(
                small_internet_matrix, IDESConfig(method="nmf"), rng=1, kernel=kernel
            )
            assert np.all(coords.outgoing >= 0)
            assert np.all(coords.incoming >= 0)
