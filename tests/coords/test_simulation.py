"""Tests for repro.coords.simulation."""

import numpy as np
import pytest

from repro.coords.simulation import VivaldiSimulation, three_node_tiv_matrix
from repro.coords.vivaldi import VivaldiConfig
from repro.errors import EmbeddingError


class TestThreeNodeMatrix:
    def test_default_values(self):
        matrix = three_node_tiv_matrix()
        assert matrix.n_nodes == 3
        assert matrix.delay(0, 1) == 5.0
        assert matrix.delay(2, 0) == 100.0
        assert matrix.labels == ("A", "B", "C")

    def test_custom_values(self):
        matrix = three_node_tiv_matrix(1.0, 2.0, 50.0)
        assert matrix.delay(0, 1) == 1.0
        assert matrix.delay(1, 2) == 2.0


class TestVivaldiSimulation:
    def test_edge_error_traces_recorded(self):
        sim = VivaldiSimulation(three_node_tiv_matrix(), VivaldiConfig(n_neighbors=2, dimension=2), rng=0)
        trace = sim.run(50, track_edges=[(0, 1), (2, 0)])
        assert trace.times.shape == (50,)
        assert set(trace.edge_errors) == {(0, 1), (2, 0)}
        assert trace.edge_errors[(0, 1)].shape == (50,)

    def test_three_node_tiv_never_converges(self):
        """Fig. 10: the TIV triangle cannot be embedded, errors stay large."""
        sim = VivaldiSimulation(three_node_tiv_matrix(), VivaldiConfig(n_neighbors=2, dimension=2), rng=1)
        trace = sim.run(100, track_edges=[(0, 1), (1, 2), (2, 0)])
        second_half = {e: errs[50:] for e, errs in trace.edge_errors.items()}
        total_abs_error = sum(np.abs(v).mean() for v in second_half.values())
        assert total_abs_error > 10.0  # cannot be driven to ~zero

    def test_euclidean_triangle_converges(self):
        """Control: a metric 3-node triangle embeds with small residual error."""
        matrix = three_node_tiv_matrix(30.0, 40.0, 60.0)
        sim = VivaldiSimulation(matrix, VivaldiConfig(n_neighbors=2, dimension=2), rng=2)
        trace = sim.run(200, track_edges=[(0, 1), (1, 2), (2, 0)])
        final_errors = [abs(float(errs[-1])) for errs in trace.edge_errors.values()]
        assert max(final_errors) < 10.0

    def test_oscillation_tracking(self, small_internet_matrix):
        sim = VivaldiSimulation(small_internet_matrix, VivaldiConfig(n_neighbors=8), rng=3)
        sim.system.run(20)
        trace = sim.run(30, track_oscillation=True)
        assert trace.oscillation_range is not None
        assert trace.oscillation_range.size == small_internet_matrix.edge_delays().size
        assert np.all(trace.oscillation_range >= 0)
        stats = trace.oscillation_vs_delay(bin_width=20.0)
        assert stats.counts.sum() == trace.oscillation_range.size

    def test_oscillation_not_tracked_raises(self, small_internet_matrix):
        sim = VivaldiSimulation(small_internet_matrix, VivaldiConfig(n_neighbors=8), rng=3)
        trace = sim.run(5)
        with pytest.raises(EmbeddingError):
            trace.oscillation_vs_delay()
        with pytest.raises(EmbeddingError):
            trace.movement_speed_summary()

    def test_movement_tracking(self, small_internet_matrix):
        sim = VivaldiSimulation(small_internet_matrix, VivaldiConfig(n_neighbors=8), rng=4)
        trace = sim.run(10, track_movement=True)
        assert trace.movement_speeds.shape == (10, small_internet_matrix.n_nodes)
        summary = trace.movement_speed_summary()
        assert summary["median"] >= 0
        assert summary["p90"] >= summary["median"]

    def test_tracked_errors_match_system_predictions(self, small_internet_matrix):
        """The vectorised trace gather equals per-pair predict calls."""
        sim = VivaldiSimulation(small_internet_matrix, VivaldiConfig(n_neighbors=8), rng=5)
        edges = [(0, 1), (2, 9), (4, 3)]
        trace = sim.run(1, track_edges=edges)
        for i, j in edges:
            expected = sim.system.predict(i, j) - float(small_internet_matrix.values[i, j])
            assert trace.edge_errors[(i, j)][-1] == pytest.approx(expected)

    def test_oscillation_matches_predicted_matrix(self, small_internet_matrix):
        """Edge-wise oscillation equals a replay using the full predicted matrix.

        The trace records extrema via the predict_edges gather; a second,
        identically seeded simulation recomputes them from predicted_matrix
        every step, so any disagreement between the two prediction paths
        (or a recording bug) shows up as a mismatch.
        """
        config = VivaldiConfig(n_neighbors=8)
        steps = 5
        sim = VivaldiSimulation(small_internet_matrix, config, rng=6)
        trace = sim.run(steps, track_oscillation=True)

        from repro.coords.vivaldi import VivaldiSystem

        replay = VivaldiSystem(small_internet_matrix, config, rng=6)
        rows, cols = small_internet_matrix.edge_index_pairs()
        running_min = np.full(rows.size, np.inf)
        running_max = np.full(rows.size, -np.inf)
        for _ in range(steps):
            replay.step()
            values = replay.predicted_matrix()[rows, cols]
            np.minimum(running_min, values, out=running_min)
            np.maximum(running_max, values, out=running_max)

        assert np.allclose(trace.oscillation_range, running_max - running_min)
        assert np.allclose(
            trace.edge_delays, small_internet_matrix.values[rows, cols]
        )

    def test_invalid_run_length(self, small_internet_matrix):
        sim = VivaldiSimulation(small_internet_matrix, rng=0)
        with pytest.raises(EmbeddingError):
            sim.run(0)

    def test_tracked_self_edge_raises(self, small_internet_matrix):
        sim = VivaldiSimulation(small_internet_matrix, rng=0)
        with pytest.raises(EmbeddingError):
            sim.run(5, track_edges=[(1, 1)])
