"""Tests for repro.coords.gnp."""

import numpy as np
import pytest

from repro.coords.gnp import GNPConfig, GNPCoordinates, fit_gnp
from repro.core.alert import TIVAlert
from repro.errors import EmbeddingError
from repro.stats.summary import relative_errors


class TestGNPConfig:
    def test_defaults(self):
        config = GNPConfig()
        assert config.dimension == 5

    def test_validation(self):
        with pytest.raises(EmbeddingError):
            GNPConfig(dimension=0)
        with pytest.raises(EmbeddingError):
            GNPConfig(dimension=5, n_landmarks=5)
        with pytest.raises(EmbeddingError):
            GNPConfig(max_iterations=0)


class TestGNPCoordinates:
    def test_shape_validation(self):
        with pytest.raises(EmbeddingError):
            GNPCoordinates(np.zeros(5), [0, 1])

    def test_predict_symmetric_zero_diagonal(self, euclidean_matrix):
        coords = fit_gnp(euclidean_matrix, GNPConfig(dimension=3, max_iterations=40), rng=0)
        assert coords.predict(2, 2) == 0.0
        assert coords.predict(1, 3) == pytest.approx(coords.predict(3, 1))
        matrix = coords.predicted_matrix()
        assert np.allclose(matrix, matrix.T)


class TestFitGnp:
    def test_landmark_bookkeeping(self, euclidean_matrix):
        coords = fit_gnp(euclidean_matrix, GNPConfig(dimension=2, n_landmarks=8, max_iterations=30), rng=1)
        assert len(coords.landmarks) == 8
        assert coords.coordinates.shape == (euclidean_matrix.n_nodes, 2)

    def test_explicit_landmarks(self, euclidean_matrix):
        coords = fit_gnp(
            euclidean_matrix,
            GNPConfig(dimension=2, max_iterations=30),
            rng=2,
            landmarks=list(range(7)),
        )
        assert coords.landmarks == tuple(range(7))

    def test_invalid_landmarks(self, euclidean_matrix):
        with pytest.raises(EmbeddingError):
            fit_gnp(euclidean_matrix, GNPConfig(dimension=3), landmarks=[0, 1])
        with pytest.raises(EmbeddingError):
            fit_gnp(euclidean_matrix, GNPConfig(dimension=2), landmarks=[0, 0, 1, 2])
        with pytest.raises(EmbeddingError):
            fit_gnp(euclidean_matrix, GNPConfig(dimension=2), landmarks=[0, 1, 2, 999])

    def test_reasonable_accuracy_on_metric_data(self, euclidean_matrix):
        coords = fit_gnp(euclidean_matrix, GNPConfig(dimension=5, max_iterations=60), rng=3)
        rel = relative_errors(euclidean_matrix.values, coords.predicted_matrix())
        assert np.median(rel) < 0.35

    def test_reproducible(self, euclidean_matrix):
        config = GNPConfig(dimension=2, n_landmarks=6, max_iterations=20)
        a = fit_gnp(euclidean_matrix, config, rng=9).coordinates
        b = fit_gnp(euclidean_matrix, config, rng=9).coordinates
        assert np.allclose(a, b)

    def test_unknown_kernel_raises(self, euclidean_matrix):
        with pytest.raises(EmbeddingError):
            fit_gnp(euclidean_matrix, kernel="turbo")

    @pytest.mark.parametrize("kernel", ["batched", "reference"])
    def test_landmarks_keep_exact_landmark_coordinates(self, euclidean_matrix, kernel):
        """Regression: hosts and landmarks must never swap or drift.

        The landmark rows of the final coordinate array must be *exactly*
        the solution of the landmark optimisation — the host solve (and the
        vectorised landmark/host partition that replaced the per-host
        ``set`` membership loop) must not touch them.
        """
        landmarks = [1, 5, 9, 17, 23, 31, 38]
        coords = fit_gnp(
            euclidean_matrix,
            GNPConfig(dimension=3, max_iterations=30),
            rng=4,
            landmarks=landmarks,
            kernel=kernel,
        )
        assert coords.landmarks == tuple(landmarks)
        rerun = fit_gnp(
            euclidean_matrix,
            GNPConfig(dimension=3, max_iterations=30),
            rng=4,
            landmarks=landmarks,
            kernel=kernel,
        )
        assert np.array_equal(
            coords.coordinates[landmarks], rerun.coordinates[landmarks]
        )
        # Hosts genuinely moved away from the zero initialisation while the
        # landmark block matches a landmark-only refit bit for bit.
        hosts = [i for i in range(euclidean_matrix.n_nodes) if i not in landmarks]
        assert np.all(np.any(coords.coordinates[hosts] != 0.0, axis=1))

    @pytest.mark.parametrize("kernel", ["batched", "reference"])
    def test_per_seed_determinism(self, euclidean_matrix, kernel):
        config = GNPConfig(dimension=2, n_landmarks=6, max_iterations=20)
        a = fit_gnp(euclidean_matrix, config, rng=11, kernel=kernel)
        b = fit_gnp(euclidean_matrix, config, rng=11, kernel=kernel)
        assert a.landmarks == b.landmarks
        assert np.array_equal(a.coordinates, b.coordinates)

    def test_kernels_statistically_equivalent(self, euclidean_matrix):
        """Both kernels minimise the same objective to comparable quality.

        Trajectories differ (majorization vs downhill simplex) so the
        coordinates are not comparable point-wise; the converged median
        relative error is.  The batched kernel descends monotonically, so
        it is allowed to be (and in practice is) the *better* of the two —
        the equivalence bound is one-sided plus a small slack.
        """
        medians = {}
        for kernel in ("batched", "reference"):
            errors = []
            for seed in range(3):
                coords = fit_gnp(
                    euclidean_matrix,
                    GNPConfig(dimension=5, max_iterations=60),
                    rng=seed,
                    kernel=kernel,
                )
                rel = relative_errors(euclidean_matrix.values, coords.predicted_matrix())
                errors.append(np.median(rel))
            medians[kernel] = float(np.mean(errors))
        assert medians["reference"] < 0.35
        assert medians["batched"] < medians["reference"] + 0.05

    def test_batched_reasonable_on_tiv_data(self, small_internet_matrix):
        coords = fit_gnp(
            small_internet_matrix,
            GNPConfig(dimension=5, n_landmarks=12),
            rng=2,
            kernel="batched",
        )
        assert np.all(np.isfinite(coords.coordinates))
        rel = relative_errors(small_internet_matrix.values, coords.predicted_matrix())
        assert np.median(rel) < 0.35

    def test_works_with_tiv_alert(self, small_internet_matrix):
        """GNP plugs into the TIV alert like any other DelayPredictor."""
        coords = fit_gnp(
            small_internet_matrix, GNPConfig(dimension=3, n_landmarks=10, max_iterations=30), rng=4
        )
        alert = TIVAlert(small_internet_matrix, coords)
        ratios = alert.ratio_matrix
        assert np.isfinite(ratios[np.triu_indices_from(ratios, k=1)]).any()
