"""Tests for repro.coords.lat."""

import numpy as np
import pytest

from repro.coords.lat import LATCoordinates, fit_lat
from repro.errors import EmbeddingError
from repro.stats.summary import absolute_errors


class TestLATCoordinates:
    def test_shape_validation(self):
        with pytest.raises(EmbeddingError):
            LATCoordinates(np.zeros(5), np.zeros(5))
        with pytest.raises(EmbeddingError):
            LATCoordinates(np.zeros((5, 2)), np.zeros(4))

    def test_adjustment_added_to_prediction(self):
        coords = np.array([[0.0, 0.0], [3.0, 4.0]])
        lat = LATCoordinates(coords, np.array([1.0, 2.0]))
        assert lat.predict(0, 1) == pytest.approx(5.0 + 1.0 + 2.0)
        assert lat.predict(0, 0) == 0.0

    def test_prediction_clamped_at_zero(self):
        coords = np.array([[0.0, 0.0], [1.0, 0.0]])
        lat = LATCoordinates(coords, np.array([-5.0, -5.0]))
        assert lat.predict(0, 1) == 0.0

    def test_predicted_matrix_matches_predict(self, converged_vivaldi):
        lat = fit_lat(converged_vivaldi, rng=0)
        matrix = lat.predicted_matrix()
        assert matrix[3, 8] == pytest.approx(lat.predict(3, 8))
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)


class TestFitLat:
    def test_adjustments_shape(self, converged_vivaldi):
        lat = fit_lat(converged_vivaldi, rng=1)
        assert lat.adjustments.shape == (converged_vivaldi.n_nodes,)
        assert np.all(np.isfinite(lat.adjustments))

    def test_explicit_samples(self, converged_vivaldi):
        n = converged_vivaldi.n_nodes
        samples = [[(i + 1) % n, (i + 2) % n] for i in range(n)]
        lat = fit_lat(converged_vivaldi, samples=samples)
        assert np.all(np.isfinite(lat.adjustments))

    def test_wrong_sample_length_raises(self, converged_vivaldi):
        with pytest.raises(EmbeddingError):
            fit_lat(converged_vivaldi, samples=[[1, 2]])

    def test_invalid_sample_size_raises(self, converged_vivaldi):
        with pytest.raises(EmbeddingError):
            fit_lat(converged_vivaldi, sample_size=0)

    def test_reproducible_with_seed(self, converged_vivaldi):
        a = fit_lat(converged_vivaldi, rng=5).adjustments
        b = fit_lat(converged_vivaldi, rng=5).adjustments
        assert np.array_equal(a, b)

    def test_improves_or_matches_aggregate_error(self, converged_vivaldi):
        """LAT is designed to improve aggregate accuracy over plain Vivaldi."""
        measured = converged_vivaldi.matrix.values
        plain = absolute_errors(measured, converged_vivaldi.predicted_matrix()).mean()
        lat = fit_lat(converged_vivaldi, sample_size=20, rng=2)
        adjusted = absolute_errors(measured, lat.predicted_matrix()).mean()
        assert adjusted <= plain * 1.05


class TestKernels:
    """Batched vs reference LAT kernels."""

    def test_unknown_kernel_raises(self, converged_vivaldi):
        with pytest.raises(EmbeddingError):
            fit_lat(converged_vivaldi, kernel="turbo")

    def test_explicit_samples_agree_exactly(self, converged_vivaldi):
        """With the sampling fixed, both kernels compute the same formula."""
        n = converged_vivaldi.n_nodes
        samples = [[(i + 1) % n, (i + 3) % n, (i + 7) % n] for i in range(n)]
        batched = fit_lat(converged_vivaldi, samples=samples, kernel="batched")
        reference = fit_lat(converged_vivaldi, samples=samples, kernel="reference")
        assert np.allclose(batched.adjustments, reference.adjustments, atol=1e-12)

    def test_ragged_and_empty_sample_lists(self, converged_vivaldi):
        n = converged_vivaldi.n_nodes
        samples = [[] if i % 3 == 0 else [(i + 1) % n, (i + 2) % n][: i % 3] for i in range(n)]
        batched = fit_lat(converged_vivaldi, samples=samples, kernel="batched")
        reference = fit_lat(converged_vivaldi, samples=samples, kernel="reference")
        assert np.allclose(batched.adjustments, reference.adjustments, atol=1e-12)
        # Nodes with no sample keep a zero adjustment under both kernels.
        assert batched.adjustments[0] == 0.0

    @pytest.mark.parametrize("kernel", ["batched", "reference"])
    def test_per_seed_determinism(self, converged_vivaldi, kernel):
        a = fit_lat(converged_vivaldi, rng=9, kernel=kernel)
        b = fit_lat(converged_vivaldi, rng=9, kernel=kernel)
        assert np.array_equal(a.adjustments, b.adjustments)

    def test_random_sampling_statistically_equivalent(self, converged_vivaldi):
        """Default sampling streams differ per kernel but estimate the same
        quantity: the mean adjustment (half the average signed prediction
        error) must agree closely when averaged over the whole system."""
        batched = fit_lat(converged_vivaldi, sample_size=40, rng=2, kernel="batched")
        reference = fit_lat(converged_vivaldi, sample_size=40, rng=2, kernel="reference")
        assert np.all(np.isfinite(batched.adjustments))
        scale = np.abs(reference.adjustments).mean() + 1e-9
        assert abs(batched.adjustments.mean() - reference.adjustments.mean()) < 0.5 * scale

    def test_batched_improves_or_matches_aggregate_error(self, converged_vivaldi):
        measured = converged_vivaldi.matrix.values
        plain = absolute_errors(measured, converged_vivaldi.predicted_matrix()).mean()
        lat = fit_lat(converged_vivaldi, sample_size=20, rng=2, kernel="batched")
        adjusted = absolute_errors(measured, lat.predicted_matrix()).mean()
        assert adjusted <= plain * 1.05
