"""Tests for repro.neighbor.filters."""

import numpy as np
import pytest

from repro.errors import NeighborSelectionError
from repro.neighbor.filters import (
    neighbor_edge_severities,
    random_neighbor_lists,
    severity_excluded_edges,
    severity_filtered_neighbor_lists,
)


class TestSeverityExcludedEdges:
    def test_fraction_size(self, small_internet_severity):
        excluded = severity_excluded_edges(small_internet_severity, fraction=0.2)
        total = small_internet_severity.edge_severities().size
        assert len(excluded) == int(round(0.2 * total))

    def test_edges_normalised(self, small_internet_severity):
        excluded = severity_excluded_edges(small_internet_severity, fraction=0.1)
        assert all(i < j for i, j in excluded)


class TestRandomNeighborLists:
    def test_shape_and_no_self(self, small_internet_matrix):
        lists = random_neighbor_lists(small_internet_matrix, n_neighbors=8, rng=0)
        assert len(lists) == small_internet_matrix.n_nodes
        for i, neighbors in enumerate(lists):
            assert len(neighbors) == 8
            assert i not in neighbors
            assert len(set(neighbors)) == 8

    def test_neighbor_count_capped(self, tiny_tiv_matrix):
        lists = random_neighbor_lists(tiny_tiv_matrix, n_neighbors=10, rng=0)
        assert all(len(neighbors) == 3 for neighbors in lists)

    def test_invalid_count_raises(self, small_internet_matrix):
        with pytest.raises(NeighborSelectionError):
            random_neighbor_lists(small_internet_matrix, n_neighbors=0)

    def test_excluded_edges_avoided(self, small_internet_matrix):
        excluded = {(0, j) for j in range(1, 60)}
        lists = random_neighbor_lists(
            small_internet_matrix, n_neighbors=8, rng=1, excluded_edges=excluded
        )
        # Node 0 still has 8 neighbours, drawn from the non-excluded ones.
        assert len(lists[0]) == 8
        allowed = set(range(60, small_internet_matrix.n_nodes))
        assert set(lists[0]) <= allowed

    def test_topped_up_when_pool_too_small(self, small_internet_matrix):
        n = small_internet_matrix.n_nodes
        excluded = {(0, j) for j in range(1, n)}  # everything excluded for node 0
        lists = random_neighbor_lists(
            small_internet_matrix, n_neighbors=8, rng=2, excluded_edges=excluded
        )
        assert len(lists[0]) == 8  # falls back to excluded edges rather than starving

    def test_reproducible(self, small_internet_matrix):
        a = random_neighbor_lists(small_internet_matrix, n_neighbors=5, rng=9)
        b = random_neighbor_lists(small_internet_matrix, n_neighbors=5, rng=9)
        assert a == b


class TestSeverityFilteredLists:
    def test_filtered_lists_have_lower_severity(self, small_internet_matrix, small_internet_severity):
        plain = random_neighbor_lists(small_internet_matrix, n_neighbors=16, rng=3)
        filtered = severity_filtered_neighbor_lists(
            small_internet_matrix,
            small_internet_severity,
            n_neighbors=16,
            fraction=0.2,
            rng=3,
        )
        plain_sev = neighbor_edge_severities(plain, small_internet_severity).mean()
        filtered_sev = neighbor_edge_severities(filtered, small_internet_severity).mean()
        assert filtered_sev <= plain_sev

    def test_severities_nonnegative(self, small_internet_matrix, small_internet_severity):
        lists = random_neighbor_lists(small_internet_matrix, n_neighbors=4, rng=4)
        severities = neighbor_edge_severities(lists, small_internet_severity)
        assert np.all(severities >= 0)
        assert severities.size == small_internet_matrix.n_nodes * 4

    def test_empty_lists_raise(self, small_internet_severity):
        with pytest.raises(NeighborSelectionError):
            neighbor_edge_severities([[]], small_internet_severity)
