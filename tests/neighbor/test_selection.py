"""Tests for repro.neighbor.selection."""

import numpy as np
import pytest

from repro.coords.base import MatrixPredictor
from repro.errors import NeighborSelectionError
from repro.meridian.rings import MeridianConfig
from repro.neighbor.selection import (
    CoordinateSelectionExperiment,
    MeridianSelectionExperiment,
    NeighborSelectionResult,
    percentage_penalty,
    select_by_predictor,
)


class TestPercentagePenalty:
    def test_perfect_choice(self):
        assert percentage_penalty(10.0, 10.0) == 0.0

    def test_double_delay_is_100_percent(self):
        assert percentage_penalty(20.0, 10.0) == pytest.approx(100.0)

    def test_zero_optimal(self):
        assert percentage_penalty(0.0, 0.0) == 0.0
        assert percentage_penalty(5.0, 0.0) == float("inf")

    def test_negative_raises(self):
        with pytest.raises(NeighborSelectionError):
            percentage_penalty(-1.0, 5.0)


class TestSelectByPredictor:
    def test_ground_truth_predictor_is_perfect(self, small_internet_matrix):
        predictor = MatrixPredictor(small_internet_matrix.with_filled_missing().values)
        candidates = list(range(10))
        clients = list(range(10, 40))
        result = select_by_predictor(small_internet_matrix, predictor, candidates, clients)
        assert result.exact_fraction == 1.0
        assert result.median_penalty() == 0.0

    def test_adversarial_predictor_is_poor(self, small_internet_matrix):
        # Predict the *negated* delays so the farthest candidate looks closest.
        inverted = MatrixPredictor(1000.0 - small_internet_matrix.with_filled_missing().values)
        candidates = list(range(10))
        clients = list(range(10, 40))
        result = select_by_predictor(small_internet_matrix, inverted, candidates, clients)
        assert result.exact_fraction < 0.5
        assert result.median_penalty() > 0

    def test_penalties_count_matches_clients(self, small_internet_matrix):
        predictor = MatrixPredictor(small_internet_matrix.with_filled_missing().values)
        result = select_by_predictor(
            small_internet_matrix, predictor, list(range(5)), list(range(5, 25))
        )
        assert result.penalties.size == 20

    def test_vivaldi_predictor_reasonable(self, small_internet_matrix, converged_vivaldi):
        candidates = list(range(0, 80, 8))
        clients = [i for i in range(80) if i not in candidates]
        result = select_by_predictor(small_internet_matrix, converged_vivaldi, candidates, clients)
        assert 0.0 <= result.exact_fraction <= 1.0
        assert np.isfinite(result.median_penalty())

    def test_size_mismatch_raises(self, small_internet_matrix):
        predictor = MatrixPredictor(np.zeros((5, 5)))
        with pytest.raises(NeighborSelectionError):
            select_by_predictor(small_internet_matrix, predictor, [0, 1], [2, 3])

    def test_empty_candidates_raise(self, small_internet_matrix, converged_vivaldi):
        with pytest.raises(NeighborSelectionError):
            select_by_predictor(small_internet_matrix, converged_vivaldi, [], [1, 2])


class TestNeighborSelectionResult:
    def test_pooling(self):
        a = NeighborSelectionResult(penalties=np.array([0.0, 10.0]), probes=5, n_runs=1)
        b = NeighborSelectionResult(penalties=np.array([20.0]), probes=7, n_runs=1)
        pooled = NeighborSelectionResult.pooled([a, b])
        assert pooled.penalties.size == 3
        assert pooled.probes == 12
        assert pooled.n_runs == 2

    def test_pool_empty_raises(self):
        with pytest.raises(NeighborSelectionError):
            NeighborSelectionResult.pooled([])

    def test_summary_and_cdf(self):
        result = NeighborSelectionResult(penalties=np.array([0.0, 0.0, 50.0, 150.0]))
        summary = result.summary()
        assert summary["exact_fraction"] == 0.5
        assert summary["median_penalty"] == 25.0
        cdf = result.cdf()
        assert cdf(0.0) == 0.5

    def test_cdf_handles_inf(self):
        result = NeighborSelectionResult(penalties=np.array([0.0, np.inf, 10.0]))
        cdf = result.cdf()
        assert len(cdf) == 3
        assert np.isfinite(cdf.values).all()


class TestCoordinateSelectionExperiment:
    def test_split_sizes(self, small_internet_matrix):
        experiment = CoordinateSelectionExperiment(
            small_internet_matrix, n_candidates=10, n_runs=3, rng=0
        )
        splits = experiment.splits()
        assert len(splits) == 3
        for candidates, clients in splits:
            assert candidates.size == 10
            assert clients.size == small_internet_matrix.n_nodes - 10
            assert not set(candidates.tolist()) & set(clients.tolist())

    def test_runs_pooled(self, small_internet_matrix, converged_vivaldi):
        experiment = CoordinateSelectionExperiment(
            small_internet_matrix, n_candidates=10, n_runs=2, rng=1
        )
        result = experiment.run(converged_vivaldi)
        assert result.n_runs == 2
        assert result.penalties.size == 2 * (small_internet_matrix.n_nodes - 10)

    def test_invalid_candidates_raises(self, small_internet_matrix):
        with pytest.raises(NeighborSelectionError):
            CoordinateSelectionExperiment(small_internet_matrix, n_candidates=0)
        with pytest.raises(NeighborSelectionError):
            CoordinateSelectionExperiment(
                small_internet_matrix, n_candidates=small_internet_matrix.n_nodes
            )
        with pytest.raises(NeighborSelectionError):
            CoordinateSelectionExperiment(small_internet_matrix, n_candidates=5, n_runs=0)

    def test_reproducible(self, small_internet_matrix, converged_vivaldi):
        def run():
            return CoordinateSelectionExperiment(
                small_internet_matrix, n_candidates=10, n_runs=2, rng=5
            ).run(converged_vivaldi)

        assert np.array_equal(run().penalties, run().penalties)


class TestMeridianSelectionExperiment:
    def test_basic_run(self, small_internet_matrix):
        experiment = MeridianSelectionExperiment(
            small_internet_matrix,
            n_meridian=20,
            config=MeridianConfig(),
            n_runs=2,
            max_clients=15,
            rng=0,
        )
        result = experiment.run()
        assert result.penalties.size == 2 * 15
        assert result.probes > 0

    def test_invalid_meridian_count(self, small_internet_matrix):
        with pytest.raises(NeighborSelectionError):
            MeridianSelectionExperiment(small_internet_matrix, n_meridian=1)
        with pytest.raises(NeighborSelectionError):
            MeridianSelectionExperiment(
                small_internet_matrix, n_meridian=small_internet_matrix.n_nodes
            )

    def test_overlay_kwargs_forwarded(self, small_internet_matrix):
        result = MeridianSelectionExperiment(
            small_internet_matrix,
            n_meridian=15,
            n_runs=1,
            max_clients=10,
            rng=1,
            overlay_kwargs={"full_membership": True},
        ).run()
        assert result.penalties.size == 10

    def test_reproducible(self, small_internet_matrix):
        def run():
            return MeridianSelectionExperiment(
                small_internet_matrix, n_meridian=15, n_runs=1, max_clients=10, rng=4
            ).run()

        assert np.array_equal(run().penalties, run().penalties)
