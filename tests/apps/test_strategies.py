"""Tests for repro.apps.strategies."""

import numpy as np
import pytest

from repro.apps.strategies import CoordinateStrategy, MeridianStrategy, OracleStrategy
from repro.coords.base import MatrixPredictor
from repro.errors import NeighborSelectionError
from repro.meridian.rings import MeridianConfig


class TestOracleStrategy:
    def test_picks_true_nearest(self, small_internet_matrix):
        strategy = OracleStrategy(small_internet_matrix)
        members = list(range(1, 20))
        chosen = strategy.select(40, members)
        assert chosen == small_internet_matrix.nearest_neighbor(40, candidates=members)

    def test_counts_probes(self, small_internet_matrix):
        strategy = OracleStrategy(small_internet_matrix)
        strategy.select(40, list(range(10)))
        assert strategy.probes == 10
        strategy.reset_probes()
        assert strategy.probes == 0

    def test_excludes_self(self, small_internet_matrix):
        strategy = OracleStrategy(small_internet_matrix)
        chosen = strategy.select(5, [5, 6, 7])
        assert chosen in (6, 7)

    def test_empty_members_raise(self, small_internet_matrix):
        strategy = OracleStrategy(small_internet_matrix)
        with pytest.raises(NeighborSelectionError):
            strategy.select(5, [5])


class TestCoordinateStrategy:
    def test_ground_truth_predictor_matches_oracle(self, small_internet_matrix):
        predictor = MatrixPredictor(small_internet_matrix.with_filled_missing().values)
        coordinate = CoordinateStrategy(predictor)
        oracle = OracleStrategy(small_internet_matrix)
        members = list(range(10, 30))
        for node in (0, 5, 50):
            assert coordinate.select(node, members) == oracle.select(node, members)

    def test_no_probes_issued(self, small_internet_matrix, converged_vivaldi):
        strategy = CoordinateStrategy(converged_vivaldi)
        strategy.select(40, list(range(10)))
        assert strategy.probes == 0

    def test_empty_members_raise(self, converged_vivaldi):
        strategy = CoordinateStrategy(converged_vivaldi)
        with pytest.raises(NeighborSelectionError):
            strategy.select(3, [3])


class TestMeridianStrategy:
    def test_selects_member(self, small_internet_matrix):
        strategy = MeridianStrategy(small_internet_matrix, rng=0)
        members = list(range(20))
        chosen = strategy.select(50, members)
        assert chosen in members
        assert strategy.probes > 0

    def test_single_member_shortcut(self, small_internet_matrix):
        strategy = MeridianStrategy(small_internet_matrix, rng=0)
        assert strategy.select(50, [3]) == 3
        assert strategy.probes == 1

    def test_overlay_reused_for_same_members(self, small_internet_matrix):
        strategy = MeridianStrategy(small_internet_matrix, rng=1)
        members = list(range(15))
        strategy.select(50, members)
        overlay_first = strategy._overlay
        strategy.select(51, members)
        assert strategy._overlay is overlay_first

    def test_overlay_rebuilt_when_members_change(self, small_internet_matrix):
        strategy = MeridianStrategy(small_internet_matrix, rng=1)
        strategy.select(50, list(range(15)))
        first = strategy._overlay
        strategy.select(50, list(range(16)))
        assert strategy._overlay is not first

    def test_respects_config(self, small_internet_matrix):
        strategy = MeridianStrategy(
            small_internet_matrix, config=MeridianConfig(beta=0.3), rng=2
        )
        chosen = strategy.select(60, list(range(25)))
        assert chosen in range(25)

    def test_reasonable_quality(self, small_internet_matrix):
        """Meridian-selected parents should usually be near-optimal."""
        strategy = MeridianStrategy(small_internet_matrix, rng=3)
        oracle = OracleStrategy(small_internet_matrix)
        members = list(range(30))
        measured = small_internet_matrix.values
        penalties = []
        for node in range(40, 70):
            selected = strategy.select(node, members)
            best = oracle.select(node, members)
            penalties.append(measured[node, selected] / measured[node, best])
        assert np.median(penalties) < 1.5
