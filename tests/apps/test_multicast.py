"""Tests for repro.apps.multicast."""

import numpy as np
import pytest

from repro.apps.multicast import MulticastTree, build_multicast_tree
from repro.apps.strategies import CoordinateStrategy, OracleStrategy
from repro.coords.base import MatrixPredictor
from repro.errors import NeighborSelectionError


class TestMulticastTreeBasics:
    def test_root_only_initially(self, small_internet_matrix):
        tree = MulticastTree(small_internet_matrix, root=0)
        assert tree.members == [0]
        assert tree.parent_of(0) is None
        assert tree.children_of(0) == []

    def test_invalid_root_raises(self, small_internet_matrix):
        with pytest.raises(NeighborSelectionError):
            MulticastTree(small_internet_matrix, root=1_000)

    def test_invalid_fanout_raises(self, small_internet_matrix):
        with pytest.raises(NeighborSelectionError):
            MulticastTree(small_internet_matrix, root=0, fanout=0)

    def test_join_attaches_to_member(self, small_internet_matrix):
        tree = MulticastTree(small_internet_matrix, root=0)
        strategy = OracleStrategy(small_internet_matrix)
        parent = tree.join(5, strategy)
        assert parent == 0
        assert tree.parent_of(5) == 0
        assert tree.children_of(0) == [5]

    def test_double_join_raises(self, small_internet_matrix):
        tree = MulticastTree(small_internet_matrix, root=0)
        strategy = OracleStrategy(small_internet_matrix)
        tree.join(5, strategy)
        with pytest.raises(NeighborSelectionError):
            tree.join(5, strategy)

    def test_unknown_node_queries_raise(self, small_internet_matrix):
        tree = MulticastTree(small_internet_matrix, root=0)
        with pytest.raises(NeighborSelectionError):
            tree.parent_of(9)
        with pytest.raises(NeighborSelectionError):
            tree.children_of(9)

    def test_fanout_respected(self, small_internet_matrix):
        tree = MulticastTree(small_internet_matrix, root=0, fanout=2)
        strategy = OracleStrategy(small_internet_matrix)
        for node in range(1, 10):
            tree.join(node, strategy)
        for member in tree.members:
            assert len(tree.children_of(member)) <= 2

    def test_metrics_require_members(self, small_internet_matrix):
        tree = MulticastTree(small_internet_matrix, root=0)
        with pytest.raises(NeighborSelectionError):
            tree.metrics()


class TestBuildMulticastTree:
    def test_all_members_joined(self, small_internet_matrix):
        strategy = OracleStrategy(small_internet_matrix)
        tree, metrics = build_multicast_tree(
            small_internet_matrix, strategy, root=0, fanout=4, rng=0
        )
        assert len(tree.members) == small_internet_matrix.n_nodes
        assert metrics.parent_penalties.size == small_internet_matrix.n_nodes - 1
        assert metrics.probes == strategy.probes

    def test_oracle_has_zero_parent_penalty(self, small_internet_matrix):
        _, metrics = build_multicast_tree(
            small_internet_matrix, OracleStrategy(small_internet_matrix), root=0, rng=1
        )
        assert np.allclose(metrics.parent_penalties, 0.0)

    def test_metrics_sane(self, small_internet_matrix):
        _, metrics = build_multicast_tree(
            small_internet_matrix, OracleStrategy(small_internet_matrix), root=0, rng=2
        )
        assert metrics.tree_cost > 0
        assert metrics.mean_root_latency > 0
        assert np.all(metrics.latency_stretch >= 1.0 - 1e-9)
        summary = metrics.summary()
        assert summary["members"] == small_internet_matrix.n_nodes
        assert summary["p90_stretch"] >= summary["median_stretch"]

    def test_explicit_join_order(self, small_internet_matrix):
        members = [3, 7, 11]
        tree, metrics = build_multicast_tree(
            small_internet_matrix,
            OracleStrategy(small_internet_matrix),
            root=0,
            members=members,
        )
        assert sorted(tree.members) == sorted([0] + members)

    def test_better_predictor_builds_cheaper_tree(self, small_internet_matrix, converged_vivaldi):
        """Ground-truth coordinates never lose to Vivaldi on parent quality."""
        order = list(range(1, small_internet_matrix.n_nodes))
        _, vivaldi_metrics = build_multicast_tree(
            small_internet_matrix, CoordinateStrategy(converged_vivaldi), root=0, members=order
        )
        perfect = MatrixPredictor(small_internet_matrix.with_filled_missing().values)
        _, perfect_metrics = build_multicast_tree(
            small_internet_matrix, CoordinateStrategy(perfect), root=0, members=order
        )
        assert (
            perfect_metrics.summary()["median_parent_penalty"]
            <= vivaldi_metrics.summary()["median_parent_penalty"]
        )

    def test_strategy_choosing_saturated_parent_falls_back(self, small_internet_matrix):
        class AlwaysRoot(OracleStrategy):
            def select(self, node, members):
                self.probes += len(members)
                return 0

        tree, metrics = build_multicast_tree(
            small_internet_matrix,
            AlwaysRoot(small_internet_matrix),
            root=0,
            members=list(range(1, 12)),
            fanout=3,
        )
        # Only three nodes can actually sit under the root; the rest must
        # have been attached to eligible parents instead.
        assert len(tree.children_of(0)) == 3
        assert len(tree.members) == 12
