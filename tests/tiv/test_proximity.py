"""Tests for repro.tiv.proximity."""

import numpy as np
import pytest

from repro.errors import DelayMatrixError
from repro.tiv.proximity import proximity_analysis


class TestProximityAnalysis:
    def test_output_sizes(self, small_internet_matrix, small_internet_severity):
        result = proximity_analysis(
            small_internet_matrix, small_internet_severity, n_samples=500, rng=0
        )
        assert result.nearest_pair_differences.size == result.random_pair_differences.size
        assert result.nearest_pair_differences.size > 0

    def test_differences_nonnegative(self, small_internet_matrix, small_internet_severity):
        result = proximity_analysis(
            small_internet_matrix, small_internet_severity, n_samples=500, rng=1
        )
        assert np.all(result.nearest_pair_differences >= 0)
        assert np.all(result.random_pair_differences >= 0)

    def test_cdfs_evaluable(self, small_internet_matrix, small_internet_severity):
        result = proximity_analysis(
            small_internet_matrix, small_internet_severity, n_samples=200, rng=2
        )
        assert 0.0 <= result.nearest_cdf()(0.1) <= 1.0
        assert 0.0 <= result.random_cdf()(0.1) <= 1.0

    def test_reproducible(self, small_internet_matrix, small_internet_severity):
        a = proximity_analysis(small_internet_matrix, small_internet_severity, n_samples=300, rng=5)
        b = proximity_analysis(small_internet_matrix, small_internet_severity, n_samples=300, rng=5)
        assert np.array_equal(a.nearest_pair_differences, b.nearest_pair_differences)
        assert np.array_equal(a.random_pair_differences, b.random_pair_differences)

    def test_nearest_not_dramatically_better(self, small_internet_matrix, small_internet_severity):
        """The paper's point: proximity gives at best a slight similarity edge."""
        result = proximity_analysis(
            small_internet_matrix, small_internet_severity, n_samples=2000, rng=3
        )
        gap = result.median_gap()
        spread = float(np.median(result.random_pair_differences)) + 1e-9
        assert gap <= spread  # nearest pairs are not overwhelmingly more similar

    def test_invalid_samples_raises(self, small_internet_matrix, small_internet_severity):
        with pytest.raises(DelayMatrixError):
            proximity_analysis(small_internet_matrix, small_internet_severity, n_samples=0)
