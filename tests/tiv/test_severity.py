"""Tests for repro.tiv.severity."""

import numpy as np
import pytest

from repro.delayspace.matrix import DelayMatrix
from repro.errors import DelayMatrixError
from repro.tiv.severity import (
    TIVSeverityResult,
    compute_tiv_severity,
    edge_tiv_severity,
    triangulation_ratios,
    violating_triangle_fraction,
)


@pytest.fixture(scope="module")
def tiv_matrix() -> DelayMatrix:
    delays = np.array(
        [
            [0.0, 5.0, 100.0, 40.0],
            [5.0, 0.0, 5.0, 38.0],
            [100.0, 5.0, 0.0, 36.0],
            [40.0, 38.0, 36.0, 0.0],
        ]
    )
    return DelayMatrix(delays, symmetrize=False)


class TestTriangulationRatios:
    def test_violating_edge_has_ratios(self, tiv_matrix):
        ratios = triangulation_ratios(tiv_matrix, 0, 2)
        assert ratios.size == 2  # witnesses: node 1 (5+5) and node 3 (40+36)
        assert np.all(ratios > 1.0)
        assert ratios.max() == pytest.approx(10.0)

    def test_non_violating_edge_empty(self, tiv_matrix):
        assert triangulation_ratios(tiv_matrix, 0, 1).size == 0

    def test_same_endpoints_raise(self, tiv_matrix):
        with pytest.raises(DelayMatrixError):
            triangulation_ratios(tiv_matrix, 1, 1)

    def test_missing_edge_raises(self):
        delays = np.array([[0.0, np.nan, 5.0], [np.nan, 0.0, 5.0], [5.0, 5.0, 0.0]])
        matrix = DelayMatrix(delays, symmetrize=False)
        with pytest.raises(DelayMatrixError):
            triangulation_ratios(matrix, 0, 1)


class TestComputeTivSeverity:
    def test_manual_value(self, tiv_matrix):
        result = compute_tiv_severity(tiv_matrix)
        expected = (100.0 / 10.0 + 100.0 / 76.0) / 4.0
        assert result.edge_severity(0, 2) == pytest.approx(expected)

    def test_symmetry(self, tiv_matrix):
        result = compute_tiv_severity(tiv_matrix)
        sev = result.severity
        finite = np.isfinite(sev)
        assert np.allclose(sev[finite], sev.T[finite])

    def test_matches_single_edge_function(self, tiv_matrix):
        result = compute_tiv_severity(tiv_matrix)
        for i, j, _ in tiv_matrix.edges():
            assert result.edge_severity(i, j) == pytest.approx(edge_tiv_severity(tiv_matrix, i, j))

    def test_diagonal_nan(self, tiv_matrix):
        result = compute_tiv_severity(tiv_matrix)
        assert np.all(np.isnan(np.diag(result.severity)))

    def test_euclidean_matrix_all_zero(self, euclidean_matrix):
        result = compute_tiv_severity(euclidean_matrix)
        assert np.all(result.edge_severities() == 0.0)
        assert np.all(result.violation_counts == 0)

    def test_violation_counts(self, tiv_matrix):
        result = compute_tiv_severity(tiv_matrix)
        assert result.violation_counts[0, 2] == 2
        assert result.violation_counts[0, 1] == 0

    def test_missing_edges_have_nan_severity(self):
        delays = np.array(
            [
                [0.0, np.nan, 20.0],
                [np.nan, 0.0, 10.0],
                [20.0, 10.0, 0.0],
            ]
        )
        matrix = DelayMatrix(delays, symmetrize=False)
        result = compute_tiv_severity(matrix)
        assert np.isnan(result.severity[0, 1])
        assert result.edge_severities().size == 2

    def test_missing_witness_not_counted(self):
        # Node 1's delays are unknown to node 3, so node 1 cannot witness a
        # violation for edge (0, 3) even though it would if measured.
        delays = np.array(
            [
                [0.0, 5.0, 30.0, 100.0],
                [5.0, 0.0, 30.0, np.nan],
                [30.0, 30.0, 0.0, 90.0],
                [100.0, np.nan, 90.0, 0.0],
            ]
        )
        matrix = DelayMatrix(delays, symmetrize=False)
        result = compute_tiv_severity(matrix)
        assert result.violation_counts[0, 3] == 0


class TestWorstEdgesAndSummary:
    def test_worst_edges_fraction(self, small_internet_severity):
        worst = small_internet_severity.worst_edges(0.1)
        total_edges = small_internet_severity.edge_severities().size
        assert len(worst) == int(round(0.1 * total_edges))
        assert all(i < j for i, j in worst)

    def test_worst_edges_are_actually_worst(self, small_internet_severity):
        worst = small_internet_severity.worst_edges(0.05)
        threshold = small_internet_severity.severity_threshold(0.05)
        values = [small_internet_severity.edge_severity(i, j) for i, j in worst]
        assert min(values) >= threshold - 1e-9

    def test_worst_edges_invalid_fraction(self, small_internet_severity):
        with pytest.raises(ValueError):
            small_internet_severity.worst_edges(0.0)
        with pytest.raises(ValueError):
            small_internet_severity.severity_threshold(2.0)

    def test_worst_edges_matches_full_sort(self, small_internet_severity):
        """The O(E) argpartition selection equals the explicit full sort."""
        result = small_internet_severity
        for fraction in (0.05, 0.2, 0.5, 1.0):
            worst = result.worst_edges(fraction)
            iu = np.triu_indices(result.n_nodes, k=1)
            vals = result.severity[iu]
            finite = np.isfinite(vals)
            rows, cols, vals = iu[0][finite], iu[1][finite], vals[finite]
            count = max(1, int(round(fraction * vals.size)))
            # Reference: sort by (-severity, index) — strictly-greater edges
            # first, boundary ties in upper-triangle order.
            order = np.lexsort((np.arange(vals.size), -vals))[:count]
            expected = {(int(rows[k]), int(cols[k])) for k in order}
            assert worst == expected

    def test_worst_edges_tie_stability(self):
        """Boundary ties resolve to the earliest edges in upper-triangle order."""
        n = 5
        severity = np.full((n, n), np.nan)
        iu = np.triu_indices(n, k=1)
        # Two clear winners, everything else tied at 1.0.
        tied_value = 1.0
        vals = np.full(iu[0].size, tied_value)
        vals[3] = 9.0
        vals[7] = 5.0
        severity[iu] = vals
        severity[(iu[1], iu[0])] = vals
        result = TIVSeverityResult(
            severity=severity,
            violation_counts=np.zeros((n, n), dtype=np.int64),
            n_nodes=n,
        )
        # 5 of 10 edges: the two distinct values plus the first three tied
        # edges in upper-triangle order.
        worst = result.worst_edges(0.5)
        tied_edges = [
            (int(iu[0][k]), int(iu[1][k]))
            for k in range(iu[0].size)
            if vals[k] == tied_value
        ]
        expected = {
            (int(iu[0][3]), int(iu[1][3])),
            (int(iu[0][7]), int(iu[1][7])),
            *tied_edges[:3],
        }
        assert worst == expected
        # Deterministic: repeated calls agree exactly.
        assert result.worst_edges(0.5) == worst

    def test_worst_edges_full_fraction_returns_all(self, small_internet_severity):
        worst = small_internet_severity.worst_edges(1.0)
        assert len(worst) == small_internet_severity.edge_severities().size

    def test_summary_keys(self, small_internet_severity):
        summary = small_internet_severity.summary()
        assert summary["edges"] > 0
        assert 0 <= summary["fraction_nonzero"] <= 1
        assert summary["max"] >= summary["p90"] >= summary["median"]


class TestViolatingTriangleFraction:
    def test_tiny_matrix_exact(self, tiv_matrix):
        # Triangles: (0,1,2) violated by edge 02; (0,1,3), (0,2,3), (1,2,3).
        # 0-2=100 vs 40+36=76 -> (0,2,3) violated too.
        assert violating_triangle_fraction(tiv_matrix) == pytest.approx(0.5)

    def test_euclidean_zero(self, euclidean_matrix):
        assert violating_triangle_fraction(euclidean_matrix) == 0.0

    def test_sampled_close_to_exact(self, small_internet_matrix):
        exact = violating_triangle_fraction(small_internet_matrix, max_triangles=None)
        sampled = violating_triangle_fraction(small_internet_matrix, max_triangles=20_000, rng=0)
        assert abs(exact - sampled) < 0.05

    def test_too_few_nodes_raises(self):
        matrix = DelayMatrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(DelayMatrixError):
            violating_triangle_fraction(matrix)


class TestChunkedComputation:
    """The chunk_size knob bounds per-row memory without changing results."""

    @pytest.mark.parametrize("chunk_size", [1, 3, 7, 16, 80, 1000])
    def test_chunked_matches_unchunked(self, small_internet_matrix, chunk_size):
        full = compute_tiv_severity(small_internet_matrix)
        chunked = compute_tiv_severity(small_internet_matrix, chunk_size=chunk_size)
        np.testing.assert_allclose(
            chunked.severity, full.severity, rtol=1e-12, atol=1e-12, equal_nan=True
        )
        assert np.array_equal(chunked.violation_counts, full.violation_counts)
        assert chunked.n_nodes == full.n_nodes

    def test_chunked_matches_on_matrix_with_missing_edges(self):
        rng = np.random.default_rng(5)
        n = 30
        upper = rng.uniform(1.0, 300.0, size=(n, n))
        delays = np.triu(upper, k=1)
        delays = delays + delays.T
        iu = np.triu_indices(n, k=1)
        drop = rng.choice(iu[0].size, size=40, replace=False)
        delays[(iu[0][drop], iu[1][drop])] = np.nan
        delays[(iu[1][drop], iu[0][drop])] = np.nan
        matrix = DelayMatrix(delays, symmetrize=False)
        full = compute_tiv_severity(matrix)
        chunked = compute_tiv_severity(matrix, chunk_size=4)
        np.testing.assert_allclose(
            chunked.severity, full.severity, rtol=1e-12, atol=1e-12, equal_nan=True
        )
        assert np.array_equal(chunked.violation_counts, full.violation_counts)

    def test_chunk_size_one_on_tiny_matrix(self, tiv_matrix):
        full = compute_tiv_severity(tiv_matrix)
        chunked = compute_tiv_severity(tiv_matrix, chunk_size=1)
        np.testing.assert_allclose(
            chunked.severity, full.severity, rtol=1e-12, equal_nan=True
        )

    @pytest.mark.parametrize("chunk_size", [0, -3])
    def test_invalid_chunk_size_rejected(self, tiv_matrix, chunk_size):
        with pytest.raises(ValueError):
            compute_tiv_severity(tiv_matrix, chunk_size=chunk_size)
