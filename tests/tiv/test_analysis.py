"""Tests for repro.tiv.analysis."""

import numpy as np
from repro.delayspace.clustering import classify_major_clusters
from repro.tiv.analysis import (
    cluster_severity_analysis,
    severity_cdf,
    severity_vs_delay,
    within_cluster_fraction_vs_delay,
)


class TestSeverityCdf:
    def test_cdf_covers_all_edges(self, small_internet_matrix, small_internet_severity):
        cdf = severity_cdf(small_internet_severity)
        assert len(cdf) == small_internet_severity.edge_severities().size

    def test_cdf_range(self, small_internet_severity):
        cdf = severity_cdf(small_internet_severity)
        assert cdf.values.min() >= 0.0


class TestSeverityVsDelay:
    def test_bins_cover_edges(self, small_internet_matrix, small_internet_severity):
        stats = severity_vs_delay(small_internet_matrix, small_internet_severity, bin_width=10.0)
        assert stats.counts.sum() == small_internet_severity.edge_severities().size

    def test_long_edges_worse_than_short(self, small_internet_matrix, small_internet_severity):
        """Qualitative Fig. 4 check: long edges carry more severity on average."""
        rows, cols = small_internet_matrix.edge_index_pairs()
        delays = small_internet_matrix.values[rows, cols]
        severities = small_internet_severity.severity[rows, cols]
        short = severities[delays <= np.quantile(delays, 0.3)]
        long = severities[delays >= np.quantile(delays, 0.7)]
        assert long.mean() > short.mean()

    def test_custom_bin_width(self, small_internet_matrix, small_internet_severity):
        coarse = severity_vs_delay(small_internet_matrix, small_internet_severity, bin_width=100.0)
        fine = severity_vs_delay(small_internet_matrix, small_internet_severity, bin_width=10.0)
        assert coarse.n_bins < fine.n_bins


class TestClusterSeverityAnalysis:
    def test_reordered_matrix_shape(self, small_internet_matrix, small_internet_severity):
        assignment = classify_major_clusters(small_internet_matrix)
        analysis = cluster_severity_analysis(
            small_internet_matrix, small_internet_severity, assignment
        )
        n = small_internet_matrix.n_nodes
        assert analysis.reordered_severity.shape == (n, n)
        assert sorted(analysis.order.tolist()) == list(range(n))

    def test_cross_cluster_edges_cause_more_violations(
        self, small_internet_matrix, small_internet_severity
    ):
        assignment = classify_major_clusters(small_internet_matrix)
        analysis = cluster_severity_analysis(
            small_internet_matrix, small_internet_severity, assignment
        )
        assert analysis.mean_cross_violations >= analysis.mean_within_violations

    def test_means_are_finite(self, small_internet_matrix, small_internet_severity):
        assignment = classify_major_clusters(small_internet_matrix)
        analysis = cluster_severity_analysis(
            small_internet_matrix, small_internet_severity, assignment
        )
        for value in (
            analysis.mean_within_severity,
            analysis.mean_cross_severity,
            analysis.mean_within_violations,
            analysis.mean_cross_violations,
        ):
            assert np.isfinite(value)


class TestWithinClusterFraction:
    def test_fraction_bounds(self, small_internet_matrix):
        assignment = classify_major_clusters(small_internet_matrix)
        centers, fraction, counts = within_cluster_fraction_vs_delay(
            small_internet_matrix, assignment, bin_width=50.0
        )
        valid = ~np.isnan(fraction)
        assert np.all(fraction[valid] >= 0.0)
        assert np.all(fraction[valid] <= 1.0)
        assert counts.sum() == small_internet_matrix.edge_delays().size

    def test_short_edges_mostly_within_cluster(self, small_internet_matrix):
        assignment = classify_major_clusters(small_internet_matrix)
        centers, fraction, counts = within_cluster_fraction_vs_delay(
            small_internet_matrix, assignment, bin_width=50.0
        )
        valid = np.flatnonzero(~np.isnan(fraction))
        # The shortest populated bin should be more "within cluster" than the longest.
        assert fraction[valid[0]] >= fraction[valid[-1]]
